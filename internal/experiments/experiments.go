// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §5) from the simulated systems:
//
//	Table 1   — cycle breakdown of map/unmap per protection mode
//	Figure 7  — cycles per packet per mode, stacked by component
//	Figure 8  — Gbps(C) model curve vs busy-wait sweep vs mode points
//	Figure 12 — throughput and CPU for 5 benchmarks × 7 modes × 2 NICs
//	Table 2   — normalized rIOMMU ratios derived from Figure 12
//	Table 3   — Netperf RR round-trip times
//	§5.3      — IOTLB miss penalty under user-level polling I/O
//	§5.4      — TLB prefetcher comparison on DMA traces
//	§4        — Bonnie++/SATA applicability check
//
// Each experiment returns structured results plus a paper-style rendering.
package experiments

import (
	"fmt"
	"sort"
)

// Quality selects run lengths: Quick for tests/CI, Full for the numbers
// recorded in EXPERIMENTS.md.
type Quality int

// Quality levels.
const (
	Quick Quality = iota
	Full
)

// scale returns n for Full quality and a reduced count for Quick.
func (q Quality) scale(quick, full int) int {
	if q == Full {
		return full
	}
	return quick
}

// String names the quality level ("quick" or "full").
func (q Quality) String() string {
	if q == Full {
		return "full"
	}
	return "quick"
}

// Config selects how an experiment runs: the Quality (run lengths) and the
// number of concurrent cell workers. Workers <= 1 is the legacy serial
// path; any value yields byte-identical results (see internal/parallel).
type Config struct {
	Quality Quality
	// Workers bounds the concurrent grid cells. Each in-flight cell owns a
	// fully isolated simulation world, so Workers also bounds live
	// simulated memories.
	Workers int
}

// Serial is the canonical single-worker config used by tests and golden
// generation.
func Serial(q Quality) Config { return Config{Quality: q, Workers: 1} }

// Output is one experiment's deliverable: the paper-style rendering plus
// the machine-readable per-cell metrics CI diffs exactly.
type Output struct {
	Text  string
	Cells []Cell
}

// Experiment is a registered, runnable reproduction of one table/figure.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the paper reports for this experiment.
	Paper string
	Run   func(cfg Config) (Output, error)
}

// renderer is a structured experiment result that can produce both halves
// of an Output.
type renderer interface {
	Render() string
	Cells() []Cell
}

// wrap adapts a structured Run* function into the registry's Run shape.
func wrap[R renderer](run func(Config) (R, error)) func(Config) (Output, error) {
	return func(cfg Config) (Output, error) {
		r, err := run(cfg)
		if err != nil {
			return Output{}, err
		}
		return Output{Text: r.Render(), Cells: r.Cells()}, nil
	}
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids())
	}
	return e, nil
}

func ids() []string {
	var out []string
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
