// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §5) from the simulated systems:
//
//	Table 1   — cycle breakdown of map/unmap per protection mode
//	Figure 7  — cycles per packet per mode, stacked by component
//	Figure 8  — Gbps(C) model curve vs busy-wait sweep vs mode points
//	Figure 12 — throughput and CPU for 5 benchmarks × 7 modes × 2 NICs
//	Table 2   — normalized rIOMMU ratios derived from Figure 12
//	Table 3   — Netperf RR round-trip times
//	§5.3      — IOTLB miss penalty under user-level polling I/O
//	§5.4      — TLB prefetcher comparison on DMA traces
//	§4        — Bonnie++/SATA applicability check
//
// Each experiment returns structured results plus a paper-style rendering.
package experiments

import (
	"fmt"
	"sort"
)

// Quality selects run lengths: Quick for tests/CI, Full for the numbers
// recorded in EXPERIMENTS.md.
type Quality int

// Quality levels.
const (
	Quick Quality = iota
	Full
)

// scale returns n for Full quality and a reduced count for Quick.
func (q Quality) scale(quick, full int) int {
	if q == Full {
		return full
	}
	return quick
}

// Experiment is a registered, runnable reproduction of one table/figure.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the paper reports for this experiment.
	Paper string
	Run   func(q Quality) (string, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids())
	}
	return e, nil
}

func ids() []string {
	var out []string
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
