package experiments

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/parallel"
	"riommu/internal/perfmodel"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// Figure8Point is one (C, Gbps) sample.
type Figure8Point struct {
	Cycles   float64
	ModelGbs float64
	// MeasuredGbs is set for busy-wait sweep points and mode points.
	MeasuredGbs float64
	Label       string
}

// Figure8Result holds the model curve, the busy-wait validation sweep, and
// the per-mode measured points of Figure 8.
type Figure8Result struct {
	Curve []Figure8Point // thick line: the Gbps(C) model
	Sweep []Figure8Point // thin line: none-mode with busy-wait lengthened C
	Modes []Figure8Point // cross points: the seven modes
}

// RunFigure8 regenerates Figure 8 on the mlx profile. The busy-wait sweep
// points and the mode points are independent cells.
func RunFigure8(cfg Config) (Figure8Result, error) {
	var res Figure8Result
	model := cycles.DefaultModel()

	// Model curve over the C range the paper plots (~1.8K..18K cycles).
	for c := 1800.0; c <= 18200; c += 400 {
		res.Curve = append(res.Curve, Figure8Point{
			Cycles:   c,
			ModelGbs: perfmodel.Gbps(model, c, device.ProfileMLX.LineRateGbps),
		})
	}

	// Busy-wait sweep: systematically lengthen C_none with a controlled
	// per-packet busy-wait loop, as §3.3 does, and measure throughput.
	opts := workload.StreamOpts{
		Messages:       cfg.Quality.scale(60, 200),
		WarmupMessages: cfg.Quality.scale(20, 60),
	}
	extras := []uint64{0, 1000, 2000, 4000, 8000, 16000}
	sweep, err := parallel.Map(cfg.Workers, extras, func(_ int, extra uint64) (Figure8Point, error) {
		r, err := workload.NetperfStreamBusyWait(sim.None, device.ProfileMLX, opts, extra)
		if err != nil {
			return Figure8Point{}, err
		}
		return Figure8Point{
			Cycles:      r.CyclesPerUnit,
			ModelGbs:    perfmodel.Gbps(model, r.CyclesPerUnit, device.ProfileMLX.LineRateGbps),
			MeasuredGbs: r.Throughput,
			Label:       fmt.Sprintf("busywait+%d", extra),
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Sweep = sweep

	// Mode points.
	modes, err := parallel.Map(cfg.Workers, sim.AllModes(), func(_ int, m sim.Mode) (Figure8Point, error) {
		r, err := workload.NetperfStream(m, device.ProfileMLX, opts)
		if err != nil {
			return Figure8Point{}, err
		}
		return Figure8Point{
			Cycles:      r.CyclesPerUnit,
			ModelGbs:    perfmodel.Gbps(model, r.CyclesPerUnit, device.ProfileMLX.LineRateGbps),
			MeasuredGbs: r.Throughput,
			Label:       m.String(),
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Modes = modes
	return res, nil
}

// Cells emits every measured point (the analytic model curve regenerates
// from the cycles model, which the mode points already pin down).
func (r Figure8Result) Cells() []Cell {
	var out []Cell
	for _, p := range r.Sweep {
		out = append(out, C("figure8", "sweep/"+p.Label, map[string]float64{
			"cycles":        p.Cycles,
			"model_gbps":    p.ModelGbs,
			"measured_gbps": p.MeasuredGbs,
		}))
	}
	for _, p := range r.Modes {
		out = append(out, C("figure8", "mode/"+p.Label, map[string]float64{
			"cycles":        p.Cycles,
			"model_gbps":    p.ModelGbs,
			"measured_gbps": p.MeasuredGbs,
		}))
	}
	return out
}

// Render prints the sweep and mode points against the model.
func (r Figure8Result) Render() string {
	t := stats.NewTable(
		"Figure 8. Netperf throughput vs cycles per packet: model vs measured",
		"point", "C (cycles)", "model Gbps", "measured Gbps", "model err")
	t.AlignLeft(0)
	for _, p := range append(append([]Figure8Point{}, r.Sweep...), r.Modes...) {
		errPct := 0.0
		if p.ModelGbs > 0 {
			errPct = (p.MeasuredGbs - p.ModelGbs) / p.ModelGbs * 100
		}
		t.Row(p.Label, p.Cycles, p.ModelGbs, p.MeasuredGbs, fmt.Sprintf("%+.1f%%", errPct))
	}
	return t.String()
}

func init() {
	register(Experiment{
		ID:    "figure8",
		Title: "Figure 8: throughput as a function of cycles per packet",
		Paper: "the Gbps(C)=1500B*8*S/C model coincides with busy-wait-lengthened runs and with all IOMMU-mode measurements",
		Run:   wrap(RunFigure8),
	})
}
