package experiments

import (
	"math"
	"strings"
	"testing"

	"riommu/internal/sim"
)

// TestFigure12AndTable2 runs the full benchmark matrix once and checks the
// normalized ratios against the paper's Table 2, with per-cell tolerance
// bands. Stream cells are tight; the request-per-packet workloads carry the
// documented strict-mode overshoot (EXPERIMENTS.md, divergence 2) and get
// loose bands that still pin the ordering and rough magnitude.
func TestFigure12AndTable2(t *testing.T) {
	r, err := RunTable2(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}

	check := func(bench, nic string, vs sim.Mode, lo, hi float64) {
		t.Helper()
		key := BenchKey{Bench: bench, NIC: nic}
		got := r.ThroughputRatio(key, sim.RIOMMU, vs)
		if got < lo || got > hi {
			t.Errorf("%s/%s riommu/%s = %.2f, want in [%.2f, %.2f] (paper %.2f)",
				nic, bench, vs, got, lo, hi, Table2Paper[key][vs])
		}
	}

	// mlx stream: the headline cells.
	check("stream", "mlx", sim.Strict, 5.0, 10.0)   // paper 7.56
	check("stream", "mlx", sim.DeferPlus, 2.0, 3.2) // paper 2.57
	check("stream", "mlx", sim.None, 0.65, 0.85)    // paper 0.77
	// brcm stream: saturation cells are exact 1.00 by construction.
	check("stream", "brcm", sim.StrictPlus, 0.99, 1.01)
	check("stream", "brcm", sim.None, 0.99, 1.01)
	// brcm stream vs strict: the only non-saturating mode.
	check("stream", "brcm", sim.Strict, 1.1, 2.3) // paper 2.17
	// rr: modest everywhere.
	check("rr", "mlx", sim.Strict, 1.1, 1.5)   // paper 1.25
	check("rr", "brcm", sim.Strict, 1.0, 1.25) // paper 1.21
	// apache-1K: computation-bound, modest.
	check("apache-1K", "mlx", sim.None, 0.85, 1.0)  // paper 0.92
	check("apache-1K", "brcm", sim.None, 0.85, 1.0) // paper 0.93
	// memcached vs none.
	check("memcached", "mlx", sim.None, 0.7, 1.0) // paper 0.83
	// The documented overshoot cells: assert direction and floor only.
	if got := r.ThroughputRatio(BenchKey{Bench: "memcached", NIC: "mlx"}, sim.RIOMMU, sim.Strict); got < 3 {
		t.Errorf("mlx memcached riommu/strict = %.2f, want >> 1 (paper 4.88)", got)
	}
	if got := r.ThroughputRatio(BenchKey{Bench: "apache-1M", NIC: "mlx"}, sim.RIOMMU, sim.Strict); got < 3 {
		t.Errorf("mlx apache-1M riommu/strict = %.2f, want >> 1 (paper 5.80)", got)
	}

	// CPU ratios at brcm saturation (Table 2's right half).
	key := BenchKey{Bench: "stream", NIC: "brcm"}
	if got := r.CPURatio(key, sim.RIOMMU, sim.None); got < 1.0 || got > 1.3 {
		t.Errorf("brcm stream riommu/none cpu = %.2f (paper 1.09)", got)
	}
	if got := r.CPURatio(key, sim.RIOMMUMinus, sim.StrictPlus); math.Abs(got-0.50) > 0.15 {
		t.Errorf("brcm stream riommu-/strict+ cpu = %.2f (paper 0.50)", got)
	}

	// Figure 12 rendering covers both NICs and all benchmarks.
	out := r.Fig.Render()
	for _, want := range []string{"Figure 12 (mlx)", "Figure 12 (brcm)", "stream", "memcached"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure12 render missing %q", want)
		}
	}
	if !strings.Contains(r.Render(), "riommu divided by") {
		t.Error("table2 render broken")
	}
}
