package experiments

import (
	"fmt"
	"strings"

	"riommu/internal/device"
	"riommu/internal/multicore"
	"riommu/internal/parallel"
	"riommu/internal/sim"
	"riommu/internal/stats"
)

// ScaleKey identifies one scalability matrix point.
type ScaleKey struct {
	NIC   string
	Mode  sim.Mode
	Cores int
}

// ScalabilityResult holds Figure S1: aggregate throughput versus core count
// for every protection mode on both NIC profiles, under the multicore
// engine's contention model (internal/multicore).
type ScalabilityResult struct {
	NICs   []device.NICProfile
	Modes  []sim.Mode
	Cores  []int
	Matrix map[ScaleKey]multicore.Result
}

// ScalabilityCores is the swept core counts of Figure S1.
var ScalabilityCores = []int{1, 2, 4, 8, 16}

// RunScalability sweeps cores x modes x NICs through the K-core engine: each
// cell is one deterministic scale-out run where every core drives its own
// MQNIC queue pair and the baseline modes serialize on the contended shared
// allocator + invalidation queue (default lock calibration).
func RunScalability(cfg Config) (ScalabilityResult, error) {
	res := ScalabilityResult{
		NICs:   []device.NICProfile{device.ProfileMLX, device.ProfileBRCM},
		Modes:  sim.AllModes(),
		Cores:  ScalabilityCores,
		Matrix: map[ScaleKey]multicore.Result{},
	}
	q := cfg.Quality
	packets, warmup := q.scale(160, 800), q.scale(60, 240)

	var grid []ScaleKey
	for _, nic := range res.NICs {
		for _, m := range res.Modes {
			for _, cores := range res.Cores {
				grid = append(grid, ScaleKey{NIC: nic.Name, Mode: m, Cores: cores})
			}
		}
	}
	profile := func(name string) device.NICProfile {
		if name == device.ProfileBRCM.Name {
			return device.ProfileBRCM
		}
		return device.ProfileMLX
	}
	cells, err := parallel.Map(cfg.Workers, grid, func(_ int, k ScaleKey) (multicore.Result, error) {
		r, err := multicore.Run(multicore.Params{
			Mode:           k.Mode,
			Profile:        profile(k.NIC),
			Cores:          k.Cores,
			PacketsPerCore: packets,
			WarmupPerCore:  warmup,
		})
		if err != nil {
			return r, fmt.Errorf("%s/%s/cores=%d: %w", k.NIC, k.Mode, k.Cores, err)
		}
		return r, nil
	})
	if err != nil {
		return res, err
	}
	for i, k := range grid {
		res.Matrix[k] = cells[i]
	}
	return res, nil
}

// Cells emits the matrix in grid order.
func (r ScalabilityResult) Cells() []Cell {
	var out []Cell
	for _, nic := range r.NICs {
		for _, m := range r.Modes {
			for _, cores := range r.Cores {
				c := r.Matrix[ScaleKey{NIC: nic.Name, Mode: m, Cores: cores}]
				var cyc uint64
				for _, pc := range c.PerCore {
					cyc += pc.Cycles
				}
				waitFrac := 0.0
				if cyc > 0 {
					waitFrac = float64(c.Lock.WaitCycles) / float64(cyc)
				}
				out = append(out, C("scalability",
					fmt.Sprintf("%s/%s/cores=%d", nic.Name, m, cores),
					map[string]float64{
						"agg_gbps":       c.AggGbps,
						"cycles_per_pkt": c.MeanCyclesPerPacket,
						"lock_acq":       float64(c.Lock.Acquisitions),
						"lock_contended": float64(c.Lock.Contended),
						"lock_wait_frac": waitFrac,
					}))
			}
		}
	}
	return out
}

// Render prints one aggregate-Gbps table per NIC (modes x cores) plus the
// baseline modes' lock-contention profile.
func (r ScalabilityResult) Render() string {
	var b strings.Builder
	for _, nic := range r.NICs {
		header := []string{"mode"}
		for _, cores := range r.Cores {
			header = append(header, fmt.Sprintf("%d cores", cores))
		}
		header = append(header, "16c vs 1c")
		t := stats.NewTable(
			fmt.Sprintf("Figure S1 (%s). Aggregate Gbps vs cores (line rate %g Gbps)", nic.Name, profileLineRate(nic)),
			header...)
		t.AlignLeft(0)
		for _, m := range r.Modes {
			row := []string{m.String()}
			var first, last float64
			for i, cores := range r.Cores {
				c := r.Matrix[ScaleKey{NIC: nic.Name, Mode: m, Cores: cores}]
				if i == 0 {
					first = c.AggGbps
				}
				last = c.AggGbps
				row = append(row, fmt.Sprintf("%.2f", c.AggGbps))
			}
			row = append(row, stats.Ratio(last, first)+"x")
			t.RowStrings(row)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}

	ct := stats.NewTable(
		"Shared-structure lock profile (contended modes, 16 cores)",
		"nic", "mode", "acquisitions", "contended", "wait frac")
	ct.AlignLeft(0).AlignLeft(1)
	for _, nic := range r.NICs {
		for _, m := range r.Modes {
			if !multicore.ContendedMode(m) {
				continue
			}
			c := r.Matrix[ScaleKey{NIC: nic.Name, Mode: m, Cores: 16}]
			var cyc uint64
			for _, pc := range c.PerCore {
				cyc += pc.Cycles
			}
			frac := 0.0
			if cyc > 0 {
				frac = float64(c.Lock.WaitCycles) / float64(cyc)
			}
			ct.Row(nic.Name, m.String(), c.Lock.Acquisitions, c.Lock.Contended,
				fmt.Sprintf("%.1f%%", 100*frac))
		}
	}
	b.WriteString(ct.String())
	return b.String()
}

func profileLineRate(p device.NICProfile) float64 { return p.LineRateGbps }

func init() {
	register(Experiment{
		ID:    "scalability",
		Title: "Figure S1: aggregate throughput vs cores, per mode and NIC",
		Paper: "§2.3: rings handled concurrently by different cores — rIOMMU scales to line rate while strict/defer serialize on the shared IOVA allocator and invalidation queue",
		Run:   wrap(RunScalability),
	})
}
