package experiments

import (
	"errors"
	"fmt"
	"strings"

	"riommu/internal/core"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/parallel"
	"riommu/internal/pci"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// AblationsResult quantifies the design choices DESIGN.md calls out:
//
//   - Burst length: §4 claims ~200-iteration completion loops make the
//     amortized rIOTLB invalidation cost negligible. The sweep shows C as
//     the burst shrinks toward the latency-sensitive regime.
//   - Deferred batch: Linux amortizes one global flush per 250 unmaps; the
//     sweep shows the safety window size against the cycles it buys.
//   - Prefetch: §4 notes the design works without the prefetched next rPTE;
//     the sweep shows the device-side fetch traffic it saves.
//   - Ring sizing: §4 requires N >= L; the sweep shows overflow behaviour
//     when the flat table is undersized.
type AblationsResult struct {
	// BurstSweep: burst length -> rIOMMU cycles/packet (mlx stream).
	BurstLens []int
	BurstC    map[int]float64
	// DeferSweep: batch size -> defer-mode cycles/packet.
	DeferBatches []int
	DeferC       map[int]float64
	// Prefetch: device-side table fetches with and without prefetching.
	FetchesWith, FetchesWithout uint64
	PrefetchHitRate             float64
	// RingSizing: flat-table size -> overflow count for a fixed live demand.
	RingSizes []uint32
	Overflows map[uint32]int
}

// RunAblations measures all four sweeps, each fanned across cfg.Workers
// with one isolated simulation world per sweep point.
func RunAblations(cfg Config) (AblationsResult, error) {
	res := AblationsResult{
		BurstC:    map[int]float64{},
		DeferC:    map[int]float64{},
		Overflows: map[uint32]int{},
	}
	q := cfg.Quality
	streamOpts := workload.StreamOpts{
		Messages:       q.scale(80, 250),
		WarmupMessages: q.scale(40, 100),
	}

	// 1. Burst-length sweep under rIOMMU.
	res.BurstLens = []int{1, 8, 32, 200}
	burstC, err := parallel.Map(cfg.Workers, res.BurstLens, func(_ int, burst int) (float64, error) {
		o := streamOpts
		o.TxBurst = burst
		r, err := workload.NetperfStream(sim.RIOMMU, device.ProfileMLX, o)
		return r.CyclesPerUnit, err
	})
	if err != nil {
		return res, err
	}
	for i, burst := range res.BurstLens {
		res.BurstC[burst] = burstC[i]
	}

	// 2. Deferred-batch sweep.
	res.DeferBatches = []int{1, 25, 250, 1000}
	deferC, err := parallel.Map(cfg.Workers, res.DeferBatches, func(_ int, batch int) (float64, error) {
		o := streamOpts
		o.DeferBatch = batch
		r, err := workload.NetperfStream(sim.Defer, device.ProfileMLX, o)
		return r.CyclesPerUnit, err
	})
	if err != nil {
		return res, err
	}
	for i, batch := range res.DeferBatches {
		res.DeferC[batch] = deferC[i]
	}

	// 3. Prefetch on/off: device-side flat-table fetch counts for the same
	// sequential workload.
	type prefetchCell struct {
		fetches uint64
		hitRate float64
	}
	prefetchCells, err := parallel.Map(cfg.Workers, []bool{false, true}, func(_ int, disable bool) (prefetchCell, error) {
		var cell prefetchCell
		sys, err := sim.NewSystem(sim.RIOMMU, workload.MemPages)
		if err != nil {
			return cell, err
		}
		defer sys.Close()
		sys.RHW.DisablePrefetch = disable
		drv, _, err := sys.AttachNIC(device.ProfileBRCM, pci.NewBDF(0, 3, 0))
		if err != nil {
			return cell, err
		}
		payload := make([]byte, 1000)
		for i := 0; i < q.scale(500, 2000); i++ {
			if err := drv.Send(payload); err != nil {
				return cell, err
			}
			if i%100 == 99 {
				if _, err := drv.PumpTx(100); err != nil {
					return cell, err
				}
				if _, err := drv.ReapTx(); err != nil {
					return cell, err
				}
			}
		}
		st := sys.RHW.Stats()
		cell.fetches = st.TableFetches
		if st.PrefetchHits+st.TableFetches > 0 {
			cell.hitRate = float64(st.PrefetchHits) / float64(st.PrefetchHits+st.TableFetches)
		}
		return cell, drv.Teardown()
	})
	if err != nil {
		return res, err
	}
	res.FetchesWith = prefetchCells[0].fetches
	res.PrefetchHitRate = prefetchCells[0].hitRate
	res.FetchesWithout = prefetchCells[1].fetches

	// 4. Ring sizing: demand L=64 concurrent mappings against flat tables
	// of various sizes; undersized tables overflow (legal; the driver must
	// slow down, §4).
	res.RingSizes = []uint32{16, 32, 64, 128}
	overflowCells, err := parallel.Map(cfg.Workers, res.RingSizes, func(_ int, n uint32) (int, error) {
		sys, err := sim.NewSystem(sim.RIOMMU, 1<<13)
		if err != nil {
			return 0, err
		}
		defer sys.Close()
		prot, err := sys.ProtectionFor(pci.NewBDF(0, 3, 0), []uint32{2, n, n})
		if err != nil {
			return 0, err
		}
		f, err := sys.Mem.AllocFrame()
		if err != nil {
			return 0, err
		}
		overflows := 0
		var live []uint64
		for i := 0; i < 64; i++ {
			iova, err := prot.Map(driver.RingTx, f.PA(), 64, pci.DirToDevice)
			if errors.Is(err, core.ErrOverflow) {
				overflows++
				continue
			}
			if err != nil {
				return 0, err
			}
			live = append(live, iova)
		}
		for i, v := range live {
			if err := prot.Unmap(driver.RingTx, v, 64, i == len(live)-1); err != nil {
				return 0, err
			}
		}
		return overflows, nil
	})
	if err != nil {
		return res, err
	}
	for i, n := range res.RingSizes {
		res.Overflows[n] = overflowCells[i]
	}
	return res, nil
}

// Cells emits every sweep point of the four ablations.
func (r AblationsResult) Cells() []Cell {
	var out []Cell
	for _, n := range r.BurstLens {
		out = append(out, C("ablations", fmt.Sprintf("burst/%d", n), map[string]float64{
			"cycles_per_packet": r.BurstC[n],
		}))
	}
	for _, n := range r.DeferBatches {
		out = append(out, C("ablations", fmt.Sprintf("defer-batch/%d", n), map[string]float64{
			"cycles_per_packet": r.DeferC[n],
		}))
	}
	out = append(out,
		C("ablations", "prefetch/on", map[string]float64{
			"table_fetches": float64(r.FetchesWith),
			"hit_rate":      r.PrefetchHitRate,
		}),
		C("ablations", "prefetch/off", map[string]float64{
			"table_fetches": float64(r.FetchesWithout),
		}))
	for _, n := range r.RingSizes {
		out = append(out, C("ablations", fmt.Sprintf("ring-size/%d", n), map[string]float64{
			"overflows": float64(r.Overflows[n]),
		}))
	}
	return out
}

// Render prints all four sweeps.
func (r AblationsResult) Render() string {
	var b strings.Builder

	t := stats.NewTable("Ablation A. rIOMMU completion-burst length vs cycles/packet (mlx stream)",
		"burst", "C (cycles/pkt)", "inval cost amortized over")
	for _, n := range r.BurstLens {
		t.Row(fmt.Sprintf("%d", n), r.BurstC[n], fmt.Sprintf("%d unmaps", n))
	}
	b.WriteString(t.String())
	b.WriteString("\n")

	t = stats.NewTable("Ablation B. defer-mode flush batch vs cycles/packet (vulnerability window grows with batch)",
		"batch", "C (cycles/pkt)")
	for _, n := range r.DeferBatches {
		t.Row(fmt.Sprintf("%d", n), r.DeferC[n])
	}
	b.WriteString(t.String())
	b.WriteString("\n")

	t = stats.NewTable("Ablation C. rIOTLB next-entry prefetch (device-side flat-table fetches)",
		"config", "DRAM fetches", "prediction rate")
	t.Row("prefetch on", fmt.Sprintf("%d", r.FetchesWith), fmt.Sprintf("%.2f", r.PrefetchHitRate))
	t.Row("prefetch off", fmt.Sprintf("%d", r.FetchesWithout), "-")
	b.WriteString(t.String())
	b.WriteString("\n")

	t = stats.NewTable("Ablation D. flat-table size N vs overflow for L=64 live mappings (overflow is legal, §4)",
		"N", "overflows")
	for _, n := range r.RingSizes {
		t.Row(fmt.Sprintf("%d", n), fmt.Sprintf("%d", r.Overflows[n]))
	}
	b.WriteString(t.String())
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "ablations",
		Title: "Ablations: burst length, defer batch, prefetching, ring sizing",
		Paper: "design-choice sweeps behind §4's claims: ~200-iteration bursts amortize invalidations; defer batches 250; prefetch optional; N >= L",
		Run:   wrap(RunAblations),
	})
}
