package experiments

import (
	"bytes"
	"testing"
)

// equivalenceSubset keeps the serial-vs-parallel test fast enough for the
// race detector while still covering every fan-out shape used by the
// experiment layer: Map over modes (table1, table3), Map over a flattened
// multi-dimension grid (figure7), indexed Run with disjoint writes
// (methodology, pathology), multi-sweep (ablations), split RNG streams
// (misspenalty), and nested parts (prefetchers). The heavyweight full-matrix
// experiments (figure12, table2) use the same parallel.Map shape as figure7
// and are exercised across worker counts by the CI golden diff, which runs
// at default workers against a -parallel 1 golden.
var equivalenceSubset = []string{
	"table1", "table3", "figure7", "ablations", "misspenalty",
	"methodology", "pathology", "prefetchers", "bonnie", "nvme",
}

func subsetExperiments(t *testing.T) []Experiment {
	t.Helper()
	var sel []Experiment
	for _, id := range equivalenceSubset {
		e, err := Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", id, err)
		}
		sel = append(sel, e)
	}
	return sel
}

// TestSerialParallelEquivalence is the tentpole guarantee: for a fixed
// quality, the merged report and the rendered text are byte-identical no
// matter how many workers execute the cell grid.
func TestSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker sweep is slow under -short")
	}
	sel := subsetExperiments(t)

	type snapshot struct {
		texts [][]byte
		json  []byte
	}
	runAt := func(workers int) snapshot {
		cfg := Config{Quality: Quick, Workers: workers}
		results := RunAll(cfg, sel)
		var s snapshot
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d: %s: %v", workers, r.Experiment.ID, r.Err)
			}
			s.texts = append(s.texts, []byte(r.Output.Text))
		}
		rep, err := BuildReport(cfg, results)
		if err != nil {
			t.Fatalf("workers=%d: BuildReport: %v", workers, err)
		}
		s.json, err = MarshalReport(rep)
		if err != nil {
			t.Fatalf("workers=%d: MarshalReport: %v", workers, err)
		}
		return s
	}

	want := runAt(1)
	if len(want.json) == 0 {
		t.Fatal("serial report is empty")
	}
	for _, workers := range []int{2, 8} {
		got := runAt(workers)
		for i, e := range sel {
			if !bytes.Equal(want.texts[i], got.texts[i]) {
				t.Errorf("workers=%d: %s rendered text differs from serial", workers, e.ID)
			}
		}
		if !bytes.Equal(want.json, got.json) {
			t.Errorf("workers=%d: JSON report differs from serial (%d vs %d bytes)",
				workers, len(want.json), len(got.json))
		}
	}
}

// TestReportCellsCoverAllExperiments ensures no registered experiment ships
// without machine-readable cells: an empty cell list would silently shrink
// the CI golden's coverage.
func TestReportCellsCoverAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is slow under -short")
	}
	cfg := Serial(Quick)
	results := RunAll(cfg, nil)
	rep, err := BuildReport(cfg, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != len(All()) {
		t.Fatalf("report covers %d experiments, registry has %d", len(rep.Experiments), len(All()))
	}
	for _, er := range rep.Experiments {
		if len(er.Cells) == 0 {
			t.Errorf("experiment %s emitted no cells", er.ID)
		}
		for _, c := range er.Cells {
			if c.Experiment != er.ID {
				t.Errorf("cell %s/%s claims experiment %q", er.ID, c.ID, c.Experiment)
			}
			if len(c.Metrics) == 0 {
				t.Errorf("cell %s/%s has no metrics", er.ID, c.ID)
			}
		}
	}
	// The marshalled form must be stable across repeated marshals (map key
	// ordering is encoding/json's, not insertion order).
	a, err := MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("MarshalReport is not stable across calls")
	}
}
