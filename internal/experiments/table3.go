package experiments

import (
	"fmt"

	"riommu/internal/device"
	"riommu/internal/parallel"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// Table3Paper records the paper's RR round-trip times in microseconds.
var Table3Paper = map[string]map[sim.Mode]float64{
	"mlx": {
		sim.Strict: 17.3, sim.StrictPlus: 15.1, sim.Defer: 14.9, sim.DeferPlus: 14.4,
		sim.RIOMMUMinus: 14.1, sim.RIOMMU: 13.9, sim.None: 13.4,
	},
	"brcm": {
		sim.Strict: 41.9, sim.StrictPlus: 36.7, sim.Defer: 36.6, sim.DeferPlus: 35.8,
		sim.RIOMMUMinus: 35.1, sim.RIOMMU: 34.7, sim.None: 34.6,
	},
}

// Table3Result holds measured RTTs in microseconds per NIC per mode.
type Table3Result struct {
	Modes []sim.Mode
	RTT   map[string]map[sim.Mode]float64
}

// RunTable3 measures Netperf RR round-trip times for both NICs; the
// nic x mode grid is flattened into cells.
func RunTable3(cfg Config) (Table3Result, error) {
	res := Table3Result{Modes: sim.AllModes(), RTT: map[string]map[sim.Mode]float64{}}
	opts := workload.RROpts{Transactions: cfg.Quality.scale(400, 2000), Warmup: cfg.Quality.scale(100, 300)}
	type gridKey struct {
		nic  device.NICProfile
		mode sim.Mode
	}
	var grid []gridKey
	for _, nic := range []device.NICProfile{device.ProfileMLX, device.ProfileBRCM} {
		for _, m := range res.Modes {
			grid = append(grid, gridKey{nic: nic, mode: m})
		}
	}
	cells, err := parallel.Map(cfg.Workers, grid, func(_ int, k gridKey) (float64, error) {
		r, err := workload.NetperfRR(k.mode, k.nic, opts)
		return r.LatencyMicros, err
	})
	if err != nil {
		return res, err
	}
	for i, k := range grid {
		if res.RTT[k.nic.Name] == nil {
			res.RTT[k.nic.Name] = map[sim.Mode]float64{}
		}
		res.RTT[k.nic.Name][k.mode] = cells[i]
	}
	return res, nil
}

// Cells emits the per-nic per-mode round-trip times.
func (r Table3Result) Cells() []Cell {
	var out []Cell
	for _, nic := range []string{"mlx", "brcm"} {
		for _, m := range r.Modes {
			out = append(out, C("table3", nic+"/"+m.String(), map[string]float64{
				"rtt_us": r.RTT[nic][m],
			}))
		}
	}
	return out
}

// Render prints the paper-style RTT table with paper values alongside.
func (r Table3Result) Render() string {
	t := stats.NewTable(
		"Table 3. Netperf RR round-trip time in microseconds (measured | paper)",
		"nic", "strict", "strict+", "defer", "defer+", "riommu-", "riommu", "none")
	for _, nic := range []string{"mlx", "brcm"} {
		row := []string{nic}
		for _, m := range r.Modes {
			row = append(row, fmt.Sprintf("%.1f | %.1f", r.RTT[nic][m], Table3Paper[nic][m]))
		}
		t.RowStrings(row)
	}
	return t.String()
}

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Table 3: Netperf RR round-trip times",
		Paper: "mlx: 17.3 (strict) .. 13.4 us (none); brcm: 41.9 .. 34.6 us; rIOMMU within 0.5-0.7 us of none",
		Run:   wrap(RunTable3),
	})
}
