package experiments

import (
	"fmt"

	"riommu/internal/device"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// Table3Paper records the paper's RR round-trip times in microseconds.
var Table3Paper = map[string]map[sim.Mode]float64{
	"mlx": {
		sim.Strict: 17.3, sim.StrictPlus: 15.1, sim.Defer: 14.9, sim.DeferPlus: 14.4,
		sim.RIOMMUMinus: 14.1, sim.RIOMMU: 13.9, sim.None: 13.4,
	},
	"brcm": {
		sim.Strict: 41.9, sim.StrictPlus: 36.7, sim.Defer: 36.6, sim.DeferPlus: 35.8,
		sim.RIOMMUMinus: 35.1, sim.RIOMMU: 34.7, sim.None: 34.6,
	},
}

// Table3Result holds measured RTTs in microseconds per NIC per mode.
type Table3Result struct {
	Modes []sim.Mode
	RTT   map[string]map[sim.Mode]float64
}

// RunTable3 measures Netperf RR round-trip times for both NICs.
func RunTable3(q Quality) (Table3Result, error) {
	res := Table3Result{Modes: sim.AllModes(), RTT: map[string]map[sim.Mode]float64{}}
	opts := workload.RROpts{Transactions: q.scale(400, 2000), Warmup: q.scale(100, 300)}
	for _, nic := range []device.NICProfile{device.ProfileMLX, device.ProfileBRCM} {
		res.RTT[nic.Name] = map[sim.Mode]float64{}
		for _, m := range res.Modes {
			r, err := workload.NetperfRR(m, nic, opts)
			if err != nil {
				return res, err
			}
			res.RTT[nic.Name][m] = r.LatencyMicros
		}
	}
	return res, nil
}

// Render prints the paper-style RTT table with paper values alongside.
func (r Table3Result) Render() string {
	t := stats.NewTable(
		"Table 3. Netperf RR round-trip time in microseconds (measured | paper)",
		"nic", "strict", "strict+", "defer", "defer+", "riommu-", "riommu", "none")
	for _, nic := range []string{"mlx", "brcm"} {
		row := []string{nic}
		for _, m := range r.Modes {
			row = append(row, fmt.Sprintf("%.1f | %.1f", r.RTT[nic][m], Table3Paper[nic][m]))
		}
		t.RowStrings(row)
	}
	return t.String()
}

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Table 3: Netperf RR round-trip times",
		Paper: "mlx: 17.3 (strict) .. 13.4 us (none); brcm: 41.9 .. 34.6 us; rIOMMU within 0.5-0.7 us of none",
		Run: func(q Quality) (string, error) {
			r, err := RunTable3(q)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	})
}
