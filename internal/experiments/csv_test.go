package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFigure7CSV(t *testing.T) {
	r, err := RunFigure7(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := r.CSV(dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "figure7.csv"))
	if len(rows) != 1+7 { // header + seven modes
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "mode" || rows[0][5] != "total" {
		t.Errorf("header = %v", rows[0])
	}
	// The none row: zero IOMMU components, total = 1816.
	last := rows[len(rows)-1]
	if last[0] != "none" {
		t.Fatalf("last mode = %s", last[0])
	}
	if last[1] != "0.00" || last[3] != "0.00" {
		t.Errorf("none row has IOMMU cycles: %v", last)
	}
	if total, _ := strconv.ParseFloat(last[5], 64); total != 1816 {
		t.Errorf("none total = %v", last[5])
	}
	// Stacks sum to totals on every row.
	for _, row := range rows[1:] {
		var sum float64
		for _, col := range row[1:5] {
			v, err := strconv.ParseFloat(col, 64)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		total, _ := strconv.ParseFloat(row[5], 64)
		if diff := sum - total; diff > 1 || diff < -1 {
			t.Errorf("%s: stack sum %.2f != total %.2f", row[0], sum, total)
		}
	}
}

func TestFigure8CSV(t *testing.T) {
	r, err := RunFigure8(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := r.CSV(dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "figure8.csv"))
	series := map[string]int{}
	for _, row := range rows[1:] {
		series[row[0]]++
	}
	if series["model"] == 0 || series["busywait"] == 0 || series["mode"] != 7 {
		t.Errorf("series counts = %v", series)
	}
}

func TestExportCSVEndToEnd(t *testing.T) {
	dir := t.TempDir()
	if err := ExportCSV(dir, Serial(Quick)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure7.csv", "figure8.csv", "figure12_mlx.csv", "figure12_brcm.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	rows := readCSV(t, filepath.Join(dir, "figure12_brcm.csv"))
	if len(rows) != 1+5*7 { // header + 5 benchmarks x 7 modes
		t.Errorf("figure12_brcm rows = %d, want %d", len(rows), 1+5*7)
	}
}

func TestWriteCSVBadDir(t *testing.T) {
	err := WriteCSV("/dev/null/impossible", "x", []string{"a"}, nil)
	if err == nil {
		t.Error("expected error for uncreatable directory")
	}
}
