package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// Cell is one machine-readable grid point: an experiment, the cell's
// identity within its grid, and the virtual-cycle metrics measured there.
// Because every clock in the simulator is virtual and every RNG is seeded,
// cell metrics are pure functions of (code, quality, seed) — so CI can
// compare marshalled cells byte-exactly against a committed golden file.
//
// Metrics marshal deterministically: encoding/json sorts map keys, and Go
// formats a given float64 bit pattern to a unique shortest representation.
type Cell struct {
	Experiment string             `json:"experiment"`
	ID         string             `json:"cell"`
	Metrics    map[string]float64 `json:"metrics"`
}

// C builds a Cell.
func C(experiment, id string, metrics map[string]float64) Cell {
	return Cell{Experiment: experiment, ID: id, Metrics: metrics}
}

// ExperimentReport groups one experiment's cells in grid order.
type ExperimentReport struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Cells []Cell `json:"cells"`
}

// Report is the full machine-readable run: every selected experiment's
// cells in registry order. This is what riommu-bench -json emits and what
// the CI benchmark-regression gate diffs against BENCH_golden.json.
// Interrupted marks a partial report flushed on SIGINT/SIGTERM — it is
// omitted on complete runs so golden files stay byte-stable.
type Report struct {
	Quality     string             `json:"quality"`
	Interrupted bool               `json:"interrupted,omitempty"`
	Experiments []ExperimentReport `json:"experiments"`
}

// RunResult pairs an experiment with its outcome. Err is per-experiment so
// callers can report every failing cell rather than stopping at the first.
type RunResult struct {
	Experiment Experiment
	Output     Output
	Err        error
}

// RunAll executes the selected experiments (all registered ones when sel is
// nil) in order. Experiments run one after another; the fan-out happens at
// the cell level inside each experiment, so at most cfg.Workers simulation
// worlds are live at any moment regardless of how many experiments are
// selected.
func RunAll(cfg Config, sel []Experiment) []RunResult {
	if sel == nil {
		sel = All()
	}
	out := make([]RunResult, len(sel))
	for i, e := range sel {
		o, err := e.Run(cfg)
		out[i] = RunResult{Experiment: e, Output: o, Err: err}
	}
	return out
}

// BuildReport assembles the machine-readable report from RunAll's results.
// It must only be called when every result succeeded: a partial report
// would silently pass the CI diff for the cells that did run.
func BuildReport(cfg Config, results []RunResult) (Report, error) {
	rep := Report{Quality: cfg.Quality.String()}
	for _, r := range results {
		if r.Err != nil {
			return Report{}, fmt.Errorf("experiments: %s failed: %w", r.Experiment.ID, r.Err)
		}
		rep.Experiments = append(rep.Experiments, ExperimentReport{
			ID:    r.Experiment.ID,
			Title: r.Experiment.Title,
			Cells: r.Output.Cells,
		})
	}
	return rep, nil
}

// BuildPartialReport assembles a report from whatever experiments finished
// before an interrupt: failed or skipped experiments are dropped and the
// report is marked Interrupted. Unlike BuildReport it never fails — an
// interrupted run flushes what it has.
func BuildPartialReport(cfg Config, results []RunResult) Report {
	rep := Report{Quality: cfg.Quality.String(), Interrupted: true}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		rep.Experiments = append(rep.Experiments, ExperimentReport{
			ID:    r.Experiment.ID,
			Title: r.Experiment.Title,
			Cells: r.Output.Cells,
		})
	}
	return rep
}

// MarshalReport renders a Report to the canonical byte form used for both
// the -json flag and the golden comparison.
func MarshalReport(rep Report) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the canonical report bytes to path.
func WriteJSON(path string, rep Report) error {
	b, err := MarshalReport(rep)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
