package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: the paper's figures are plots; these emitters write the data
// series behind Figures 7, 8 and 12 as CSV files ready for any plotting
// tool, one file per figure panel.

// WriteCSV renders rows into dir/name.csv.
func WriteCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f2s(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// CSV writes the Figure 7 stacked-bar series.
func (r Figure7Result) CSV(dir string) error {
	rows := make([][]string, 0, len(r.Modes))
	for _, m := range r.Modes {
		rows = append(rows, []string{
			m.String(), f2s(r.IOVA[m]), f2s(r.PageTable[m]), f2s(r.Inv[m]),
			f2s(r.Other[m]), f2s(r.Total[m]),
		})
	}
	return WriteCSV(dir, "figure7",
		[]string{"mode", "iova_dealloc", "page_table", "iotlb_inv", "other", "total"}, rows)
}

// CSV writes the Figure 8 model curve, sweep and mode points.
func (r Figure8Result) CSV(dir string) error {
	var rows [][]string
	for _, p := range r.Curve {
		rows = append(rows, []string{"model", "", f2s(p.Cycles), f2s(p.ModelGbs), ""})
	}
	for _, p := range r.Sweep {
		rows = append(rows, []string{"busywait", p.Label, f2s(p.Cycles), f2s(p.ModelGbs), f2s(p.MeasuredGbs)})
	}
	for _, p := range r.Modes {
		rows = append(rows, []string{"mode", p.Label, f2s(p.Cycles), f2s(p.ModelGbs), f2s(p.MeasuredGbs)})
	}
	return WriteCSV(dir, "figure8",
		[]string{"series", "label", "cycles_per_packet", "model_gbps", "measured_gbps"}, rows)
}

// CSV writes one file per NIC with every Figure 12 panel's series.
func (r Figure12Result) CSV(dir string) error {
	for _, nic := range r.NICs {
		var rows [][]string
		for _, bench := range r.Benches {
			cells := r.Matrix[BenchKey{Bench: bench, NIC: nic.Name}]
			for _, m := range r.Modes {
				c := cells[m]
				rows = append(rows, []string{
					bench, m.String(), fmt.Sprintf("%g", c.Throughput), c.Unit,
					f2s(c.CPU * 100), f2s(c.CyclesPerUnit),
				})
			}
		}
		if err := WriteCSV(dir, "figure12_"+nic.Name,
			[]string{"benchmark", "mode", "throughput", "unit", "cpu_pct", "cycles_per_unit"}, rows); err != nil {
			return err
		}
	}
	return nil
}

// ExportCSV regenerates the three figures and writes their data series
// under dir. Used by riommu-bench -csv.
func ExportCSV(dir string, cfg Config) error {
	f7, err := RunFigure7(cfg)
	if err != nil {
		return fmt.Errorf("figure7: %w", err)
	}
	if err := f7.CSV(dir); err != nil {
		return err
	}
	f8, err := RunFigure8(cfg)
	if err != nil {
		return fmt.Errorf("figure8: %w", err)
	}
	if err := f8.CSV(dir); err != nil {
		return err
	}
	f12, err := RunFigure12(cfg)
	if err != nil {
		return fmt.Errorf("figure12: %w", err)
	}
	return f12.CSV(dir)
}
