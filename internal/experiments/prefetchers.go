package experiments

import (
	"fmt"

	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/mem"
	"riommu/internal/netstack"
	"riommu/internal/parallel"
	"riommu/internal/pci"
	"riommu/internal/prefetch"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/trace"
	"riommu/internal/workload"
)

// PrefetchersResult reproduces §5.4: a single-use, ring-ordered DMA trace —
// synthesized per the workload structure of §2.3 (pre-mapped Rx rings,
// buffers used once and refilled, allocator drift, irregular Rx/Tx
// interleaving) — is fed to the Markov/Recency/Distance TLB prefetchers in
// baseline and modified forms at several history sizes. The rIOTLB's own
// prefetching, measured from an actual rIOMMU run, is the reference.
//
// The result also reports hit rates on a trace *collected* from our
// simulated netperf run. That trace is friendlier to the prefetchers than
// the paper observed, because our transmit path allocates IOVAs in long
// contiguous descending bursts that stay live together (a simulator
// regularity real kernels' scattered allocations do not exhibit); the
// divergence is documented in EXPERIMENTS.md.
type PrefetchersResult struct {
	TraceEvents int
	RingLive    int // live IOVAs in the traced configuration

	// HitRates[name][history] for the modified variants on the synthetic trace.
	HitRates map[string]map[int]float64
	// BaselineHitRates[name] with the largest history.
	BaselineHitRates map[string]float64
	// CollectedHitRates[name]: modified variants, largest history, on the
	// trace recorded from the simulated netperf run.
	CollectedHitRates map[string]float64
	CollectedEvents   int

	// RIOTLB prediction accuracy from the real rIOMMU run (prefetch hits /
	// sequential-translation opportunities) and its per-ring entry count.
	RIOTLBHitRate float64
	RIOTLBEntries int
	Histories     []int
}

// recordingProt wraps a Protection, logging map/unmap page events.
type recordingProt struct {
	inner driver.Protection
	tr    *trace.Trace
	bdf   pci.BDF
}

func (p *recordingProt) Map(ring int, pa mem.PA, size uint32, dir pci.Dir) (uint64, error) {
	iova, err := p.inner.Map(ring, pa, size, dir)
	if err == nil && ring != driver.RingStatic {
		first := iova >> mem.PageShift
		last := (iova + uint64(size) - 1) >> mem.PageShift
		for pg := first; pg <= last; pg++ {
			p.tr.Record(trace.EvMap, p.bdf, pg<<mem.PageShift, dir)
		}
	}
	return iova, err
}

func (p *recordingProt) Unmap(ring int, iova uint64, size uint32, endOfBurst bool) error {
	err := p.inner.Unmap(ring, iova, size, endOfBurst)
	if err == nil && ring != driver.RingStatic {
		if size == 0 {
			size = 1
		}
		first := iova >> mem.PageShift
		last := (iova + uint64(size) - 1) >> mem.PageShift
		for pg := first; pg <= last; pg++ {
			p.tr.Record(trace.EvUnmap, p.bdf, pg<<mem.PageShift, pci.DirNone)
		}
	}
	return err
}

// CollectTrace runs a Netperf-stream-like workload on a strict-mode system
// with both the translation path and the map/unmap path recorded.
func CollectTrace(q Quality, profile device.NICProfile) (*trace.Trace, error) {
	sys, err := sim.NewSystem(sim.Strict, workload.MemPages)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	bdf := pci.NewBDF(0, 3, 0)
	tr := &trace.Trace{}

	// Splice the recorder into the DMA path.
	sys.Eng.SetTranslator(&trace.Recorder{Inner: sys.BaseHW, Trace: tr})
	prot, err := sys.ProtectionFor(bdf, driver.RIOMMURingSizes(profile))
	if err != nil {
		return nil, err
	}
	drv, _, err := driver.NewNICDriver(sys.Mem, &recordingProt{inner: prot, tr: tr, bdf: bdf}, sys.Eng, profile, bdf)
	if err != nil {
		return nil, err
	}
	conn := netstack.NewConn(sys.CPU, drv, netstack.DefaultParams(profile))
	for i := 0; i < q.scale(40, 150); i++ {
		if err := conn.SendMessage(16 * 1024); err != nil {
			return nil, err
		}
	}
	if err := conn.Flush(); err != nil {
		return nil, err
	}
	// Keep only the dynamically mapped buffer pages: descriptor-ring pages
	// are persistently mapped and trivially IOTLB-resident, so including
	// their fetches would mask the per-buffer behaviour §5.4 analyzes.
	dynamic := map[uint64]bool{}
	for _, e := range tr.Events {
		if e.Kind == trace.EvMap {
			dynamic[e.Page] = true
		}
	}
	filtered := &trace.Trace{}
	for _, e := range tr.Events {
		if e.Kind != trace.EvTranslate || dynamic[e.Page] {
			filtered.Events = append(filtered.Events, e)
		}
	}
	return filtered, nil
}

// prefetcherNames fixes the evaluation order of the software prefetchers so
// output never depends on map iteration order.
var prefetcherNames = []string{"markov", "recency", "distance"}

func newPrefetcher(name string, c prefetch.Config) prefetch.Prefetcher {
	switch name {
	case "markov":
		return prefetch.NewMarkov(c)
	case "recency":
		return prefetch.NewRecency(c)
	default:
		return prefetch.NewDistance(c)
	}
}

// RunPrefetchers performs the §5.4 comparison on a small NIC configuration
// (ring live-set ~1K pages) so the history sweep brackets the ring size.
// Its three parts — synthetic-trace sweep, collected-trace evaluation, and
// the rIOMMU reference run — are independent cells.
func RunPrefetchers(cfg Config) (PrefetchersResult, error) {
	q := cfg.Quality
	profile := device.ProfileBRCM // 1 buffer/packet keeps the trace readable
	profile.BufferBytes = 4096    // page-sized buffers: no page-sharing artifacts
	const ringPages = 512
	res := PrefetchersResult{
		HitRates:          map[string]map[int]float64{},
		BaselineHitRates:  map[string]float64{},
		CollectedHitRates: map[string]float64{},
		RingLive:          ringPages * 2,
	}
	res.Histories = []int{res.RingLive / 4, res.RingLive, res.RingLive * 4, res.RingLive * 16}
	bigHist := res.Histories[len(res.Histories)-1]

	// The three parts write disjoint fields of res, so they can run
	// concurrently without further coordination.
	parts := []func() error{
		func() error {
			tr := prefetch.SyntheticRingTrace(pci.NewBDF(0, 3, 0), ringPages, q.scale(4, 10), 2, 10)
			res.TraceEvents = tr.Len()
			for _, name := range prefetcherNames {
				res.HitRates[name] = map[int]float64{}
				for _, h := range res.Histories {
					c := prefetch.Config{TLBEntries: 64, History: h, RetainInvalidated: true}
					res.HitRates[name][h] = prefetch.Evaluate(newPrefetcher(name, c), tr).HitRate()
				}
				base := prefetch.Config{TLBEntries: 64, History: bigHist, RetainInvalidated: false}
				res.BaselineHitRates[name] = prefetch.Evaluate(newPrefetcher(name, base), tr).HitRate()
			}
			return nil
		},
		func() error {
			// Observation: the same prefetchers on a trace collected from
			// the simulated netperf run (see the type comment for why it is
			// friendlier than the paper's traces).
			collected, err := CollectTrace(q, profile)
			if err != nil {
				return err
			}
			res.CollectedEvents = collected.Len()
			for _, name := range prefetcherNames {
				c := prefetch.Config{TLBEntries: 64, History: bigHist, RetainInvalidated: true}
				res.CollectedHitRates[name] = prefetch.Evaluate(newPrefetcher(name, c), collected).HitRate()
			}
			return nil
		},
		func() error {
			// Reference: the real rIOMMU running the same workload.
			sys, err := sim.NewSystem(sim.RIOMMU, workload.MemPages)
			if err != nil {
				return err
			}
			defer sys.Close()
			bdf := pci.NewBDF(0, 3, 0)
			drv, _, err := sys.AttachNIC(profile, bdf)
			if err != nil {
				return err
			}
			conn := netstack.NewConn(sys.CPU, drv, netstack.DefaultParams(profile))
			for i := 0; i < q.scale(40, 150); i++ {
				if err := conn.SendMessage(16 * 1024); err != nil {
					return err
				}
			}
			if err := conn.Flush(); err != nil {
				return err
			}
			st := sys.RHW.Stats()
			if st.Translations > 0 {
				// Sequential translations that could have been predicted:
				// all but the per-burst leading fetches.
				res.RIOTLBHitRate = float64(st.PrefetchHits) / float64(st.PrefetchHits+st.TableFetches)
			}
			res.RIOTLBEntries = 2 // current + prefetched next, per ring (§5.4)
			return nil
		},
	}
	err := parallel.Run(cfg.Workers, len(parts), func(i int) error { return parts[i]() })
	return res, err
}

// Cells emits every hit rate the comparison produced.
func (r PrefetchersResult) Cells() []Cell {
	var out []Cell
	for _, name := range prefetcherNames {
		for _, h := range r.Histories {
			out = append(out, C("prefetchers", fmt.Sprintf("synthetic/%s/hist=%d", name, h), map[string]float64{
				"hit_rate": r.HitRates[name][h],
			}))
		}
		out = append(out, C("prefetchers", "synthetic/"+name+"/baseline", map[string]float64{
			"hit_rate": r.BaselineHitRates[name],
		}))
	}
	for _, name := range prefetcherNames {
		out = append(out, C("prefetchers", "collected/"+name, map[string]float64{
			"hit_rate": r.CollectedHitRates[name],
		}))
	}
	out = append(out, C("prefetchers", "riotlb", map[string]float64{
		"hit_rate": r.RIOTLBHitRate,
		"entries":  float64(r.RIOTLBEntries),
	}))
	return out
}

// Render prints the comparison table.
func (r PrefetchersResult) Render() string {
	t := stats.NewTable(
		fmt.Sprintf("Sec 5.4. TLB prefetcher hit rates on a DMA trace (%d events, ring live-set %d pages)", r.TraceEvents, r.RingLive),
		"prefetcher", "baseline", fmt.Sprintf("hist=%d", r.Histories[0]), fmt.Sprintf("hist=%d", r.Histories[1]),
		fmt.Sprintf("hist=%d", r.Histories[2]), fmt.Sprintf("hist=%d", r.Histories[3]))
	for _, name := range []string{"markov", "recency", "distance"} {
		row := []string{name, fmt.Sprintf("%.2f", r.BaselineHitRates[name])}
		for _, h := range r.Histories {
			row = append(row, fmt.Sprintf("%.2f", r.HitRates[name][h]))
		}
		t.RowStrings(row)
	}
	out := t.String()
	out += fmt.Sprintf("rIOTLB (reference): %d entries per ring, prediction rate %.2f on sequential bursts\n",
		r.RIOTLBEntries, r.RIOTLBHitRate)
	out += fmt.Sprintf("collected netperf trace (%d events, hist=%d): markov %.2f recency %.2f distance %.2f (see EXPERIMENTS.md note)\n",
		r.CollectedEvents, r.Histories[len(r.Histories)-1],
		r.CollectedHitRates["markov"], r.CollectedHitRates["recency"], r.CollectedHitRates["distance"])
	return out
}

func init() {
	register(Experiment{
		ID:    "prefetchers",
		Title: "Sec 5.4: comparison against Markov/Recency/Distance TLB prefetchers",
		Paper: "baseline prefetchers ineffective; modified Markov/Recency work only with history > ring; Distance ineffective; rIOTLB needs 2 entries/ring, always correct",
		Run:   wrap(RunPrefetchers),
	})
}
