package experiments

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/driver"
	"riommu/internal/parallel"
	"riommu/internal/pci"
	"riommu/internal/perfmodel"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// NVMeResult is an *extension* experiment: §4 asserts rIOMMU applies to
// PCIe SSDs (NVMe's queues impose the same strict in-order discipline as
// NIC rings) but the paper does not evaluate one. We measure 4 KiB random
// I/O through the NVMe driver under every protection mode: the per-command
// CPU cost (map + submit + complete + unmap) bounds the achievable IOPS via
// the same validated cycles model, capped by the drive's rated IOPS.
type NVMeResult struct {
	Modes []sim.Mode
	// CyclesPerOp is the measured CPU cost per 4 KiB command.
	CyclesPerOp map[sim.Mode]float64
	// KIOPS is the resulting throughput in thousands of IOPS.
	KIOPS map[sim.Mode]float64
	// DriveKIOPS is the drive-side cap.
	DriveKIOPS float64
}

// nvmeDriveKIOPS models a high-end 2015 PCIe SSD (~750K 4 KiB IOPS).
const nvmeDriveKIOPS = 750.0

// nvmeStackCycles is the per-command block-layer cost (bio handling,
// completion, context switching) outside the IOMMU path.
const nvmeStackCycles = 900

// RunNVMe measures the per-command cost in each mode, one isolated world
// per mode cell.
func RunNVMe(cfg Config) (NVMeResult, error) {
	res := NVMeResult{
		Modes:       sim.AllModes(),
		CyclesPerOp: map[sim.Mode]float64{},
		KIOPS:       map[sim.Mode]float64{},
		DriveKIOPS:  nvmeDriveKIOPS,
	}
	const depth = 32
	q := cfg.Quality
	ops := q.scale(1500, 6000)
	bdf := pci.NewBDF(0, 4, 0)

	type nvmeCell struct {
		cyclesPerOp, kiops float64
	}
	cells, err := parallel.Map(cfg.Workers, res.Modes, func(_ int, m sim.Mode) (nvmeCell, error) {
		var cell nvmeCell
		sys, err := sim.NewSystem(m, workload.MemPages)
		if err != nil {
			return cell, err
		}
		defer sys.Close()
		prot, err := sys.ProtectionFor(bdf, []uint32{4, 4 * depth, 4 * depth})
		if err != nil {
			return cell, err
		}
		d, err := driver.NewNVMeDriver(sys.Mem, prot, sys.Eng, bdf, 4096, 1024, 256)
		if err != nil {
			return cell, err
		}
		run := func(n int) error {
			for i := 0; i < n; i += depth {
				for j := 0; j < depth; j++ {
					sys.CPU.Charge(cycles.App, nvmeStackCycles)
					if _, err := d.Read(uint64((i+j)%1024), 4096); err != nil {
						return err
					}
				}
				if _, err := d.Poll(depth); err != nil {
					return err
				}
			}
			return nil
		}
		if err := run(q.scale(300, 1000)); err != nil { // warmup
			return cell, err
		}
		sys.ResetClocks()
		if err := run(ops); err != nil {
			return cell, err
		}
		cell.cyclesPerOp = float64(sys.CPU.Now()) / float64(ops)
		cell.kiops = perfmodel.RatePerSecond(sys.Model, cell.cyclesPerOp, nvmeDriveKIOPS*1000) / 1000
		return cell, d.Teardown()
	})
	if err != nil {
		return res, err
	}
	for i, m := range res.Modes {
		res.CyclesPerOp[m] = cells[i].cyclesPerOp
		res.KIOPS[m] = cells[i].kiops
	}
	return res, nil
}

// Cells emits the per-mode IOPS points.
func (r NVMeResult) Cells() []Cell {
	out := make([]Cell, 0, len(r.Modes))
	for _, m := range r.Modes {
		out = append(out, C("nvme", m.String(), map[string]float64{
			"cycles_per_op": r.CyclesPerOp[m],
			"kiops":         r.KIOPS[m],
		}))
	}
	return out
}

// Render prints the comparison.
func (r NVMeResult) Render() string {
	t := stats.NewTable(
		fmt.Sprintf("Extension. NVMe 4 KiB I/O under DMA protection (drive rated %.0fK IOPS, QD32)", r.DriveKIOPS),
		"mode", "cycles/op", "K IOPS", "vs drive cap")
	for _, m := range r.Modes {
		t.Row(m.String(), r.CyclesPerOp[m], r.KIOPS[m],
			fmt.Sprintf("%.2fx", r.KIOPS[m]/r.DriveKIOPS))
	}
	return t.String()
}

func init() {
	register(Experiment{
		ID:    "nvme",
		Title: "Extension: NVMe SSD IOPS under each protection mode",
		Paper: "§4 asserts applicability (NVMe queues are consumed in order) without evaluating; this experiment quantifies it",
		Run:   wrap(RunNVMe),
	})
}
