package experiments

import (
	"fmt"

	"riommu/internal/driver"
	"riommu/internal/pci"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// MissPenaltyResult reproduces §5.3: in a user-level polling I/O setup
// (no interrupts, no TCP/IP), the cost of an IOTLB miss becomes visible.
// The first experiment sends from buffers drawn randomly out of a large
// pre-mapped pool (IOTLB always misses); the second sends from a single
// buffer (IOTLB always hits). The latency difference is the miss penalty.
type MissPenaltyResult struct {
	// Baseline IOMMU results.
	RandomCycles, SingleCycles float64
	MissPenaltyCycles          float64
	MissPenaltyMicros          float64
	// rIOMMU comparison: the same experiments; in-order and random access.
	RInOrderCycles, RRandomCycles float64
}

// PaperMissPenaltyCycles is the paper's measured IOTLB miss cost.
const PaperMissPenaltyCycles = 1532.0

// RunMissPenalty performs the §5.3 microbenchmark.
func RunMissPenalty(q Quality) (MissPenaltyResult, error) {
	var res MissPenaltyResult
	bdf := pci.NewBDF(0, 3, 0)
	const poolBuffers = 2048
	sends := q.scale(4000, 20000)

	lcg := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		lcg ^= lcg << 13
		lcg ^= lcg >> 7
		lcg ^= lcg << 17
		return lcg
	}

	// Baseline IOMMU, persistent mappings, polling-mode sends.
	{
		sys, err := sim.NewSystem(sim.Strict, workload.MemPages)
		if err != nil {
			return res, err
		}
		prot, err := sys.ProtectionFor(bdf, []uint32{4, 4096, 4096})
		if err != nil {
			return res, err
		}
		iovas := make([]uint64, poolBuffers)
		for i := range iovas {
			f, err := sys.Mem.AllocFrame()
			if err != nil {
				return res, err
			}
			iovas[i], err = prot.Map(driver.RingTx, f.PA(), 2048, pci.DirToDevice)
			if err != nil {
				return res, err
			}
		}
		buf := make([]byte, 64)
		measure := func(pick func(i int) uint64) float64 {
			// Warm.
			for i := 0; i < 64; i++ {
				if err := sys.Eng.Read(bdf, pick(i), buf); err != nil {
					panic(err)
				}
			}
			before := sys.Dev.Now()
			for i := 0; i < sends; i++ {
				if err := sys.Eng.Read(bdf, pick(i), buf); err != nil {
					panic(err)
				}
			}
			return float64(sys.Dev.Now()-before) / float64(sends)
		}
		res.RandomCycles = measure(func(int) uint64 { return iovas[next()%poolBuffers] })
		res.SingleCycles = measure(func(int) uint64 { return iovas[0] })
		res.MissPenaltyCycles = res.RandomCycles - res.SingleCycles
		res.MissPenaltyMicros = sys.Model.Micros(uint64(res.MissPenaltyCycles))
	}

	// rIOMMU: in-order ring access is always predicted; random access costs
	// only a flat-table DRAM fetch, far below a radix walk.
	{
		sys, err := sim.NewSystem(sim.RIOMMU, workload.MemPages)
		if err != nil {
			return res, err
		}
		prot, err := sys.ProtectionFor(bdf, []uint32{4, poolBuffers * 2, poolBuffers * 2})
		if err != nil {
			return res, err
		}
		iovas := make([]uint64, poolBuffers)
		for i := range iovas {
			f, err := sys.Mem.AllocFrame()
			if err != nil {
				return res, err
			}
			iovas[i], err = prot.Map(driver.RingTx, f.PA(), 2048, pci.DirToDevice)
			if err != nil {
				return res, err
			}
		}
		buf := make([]byte, 64)
		measure := func(pick func(i int) uint64) float64 {
			for i := 0; i < 64; i++ {
				if err := sys.Eng.Read(bdf, pick(i), buf); err != nil {
					panic(err)
				}
			}
			before := sys.Dev.Now()
			for i := 0; i < sends; i++ {
				if err := sys.Eng.Read(bdf, pick(i), buf); err != nil {
					panic(err)
				}
			}
			return float64(sys.Dev.Now()-before) / float64(sends)
		}
		res.RInOrderCycles = measure(func(i int) uint64 { return iovas[i%poolBuffers] })
		res.RRandomCycles = measure(func(int) uint64 { return iovas[next()%poolBuffers] })
	}
	return res, nil
}

// Render prints the comparison.
func (r MissPenaltyResult) Render() string {
	t := stats.NewTable(
		"Sec 5.3. IOTLB miss penalty under user-level polling I/O (device-side cycles per send)",
		"experiment", "cycles/send")
	t.Row("baseline, random buffer from large pool (miss)", r.RandomCycles)
	t.Row("baseline, single buffer (hit)", r.SingleCycles)
	t.Row("=> miss penalty (paper: ~1532 cy / ~0.5us)",
		fmt.Sprintf("%.0f cy = %.2f us", r.MissPenaltyCycles, r.MissPenaltyMicros))
	t.Row("riommu, in-order ring access (prefetched)", r.RInOrderCycles)
	t.Row("riommu, random access (flat-table fetch)", r.RRandomCycles)
	return t.String()
}

func init() {
	register(Experiment{
		ID:    "misspenalty",
		Title: "Sec 5.3: IOTLB miss penalty in low-latency environments",
		Paper: "miss penalty ~0.5 us (1,532 cycles); approximates rIOMMU's benefit for user-level I/O",
		Run: func(q Quality) (string, error) {
			r, err := RunMissPenalty(q)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	})
}
