package experiments

import (
	"fmt"

	"riommu/internal/driver"
	"riommu/internal/parallel"
	"riommu/internal/pci"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// MissPenaltyResult reproduces §5.3: in a user-level polling I/O setup
// (no interrupts, no TCP/IP), the cost of an IOTLB miss becomes visible.
// The first experiment sends from buffers drawn randomly out of a large
// pre-mapped pool (IOTLB always misses); the second sends from a single
// buffer (IOTLB always hits). The latency difference is the miss penalty.
type MissPenaltyResult struct {
	// Baseline IOMMU results.
	RandomCycles, SingleCycles float64
	MissPenaltyCycles          float64
	MissPenaltyMicros          float64
	// rIOMMU comparison: the same experiments; in-order and random access.
	RInOrderCycles, RRandomCycles float64
}

// PaperMissPenaltyCycles is the paper's measured IOTLB miss cost.
const PaperMissPenaltyCycles = 1532.0

// RunMissPenalty performs the §5.3 microbenchmark. Its two halves (baseline
// IOMMU and rIOMMU) are independent cells with their own simulation worlds
// and their own xorshift streams, so they parallelize without sharing state.
func RunMissPenalty(cfg Config) (MissPenaltyResult, error) {
	var res MissPenaltyResult
	bdf := pci.NewBDF(0, 3, 0)
	const poolBuffers = 2048
	sends := cfg.Quality.scale(4000, 20000)

	// Each cell owns one xorshift state; the streams must depend only on
	// the cell, never on which worker ran it.
	newRand := func() func() uint64 {
		lcg := uint64(0x9e3779b97f4a7c15)
		return func() uint64 {
			lcg ^= lcg << 13
			lcg ^= lcg >> 7
			lcg ^= lcg << 17
			return lcg
		}
	}

	type half struct {
		a, b            float64 // cell-specific measurements
		penalty, micros float64
	}
	runHalf := func(id int) (half, error) {
		var out half
		mode, tables := sim.Strict, []uint32{4, 4096, 4096}
		if id == 1 {
			mode, tables = sim.RIOMMU, []uint32{4, poolBuffers * 2, poolBuffers * 2}
		}
		sys, err := sim.NewSystem(mode, workload.MemPages)
		if err != nil {
			return out, err
		}
		defer sys.Close()
		prot, err := sys.ProtectionFor(bdf, tables)
		if err != nil {
			return out, err
		}
		iovas := make([]uint64, poolBuffers)
		for i := range iovas {
			f, err := sys.Mem.AllocFrame()
			if err != nil {
				return out, err
			}
			iovas[i], err = prot.Map(driver.RingTx, f.PA(), 2048, pci.DirToDevice)
			if err != nil {
				return out, err
			}
		}
		buf := make([]byte, 64)
		measure := func(pick func(i int) uint64) float64 {
			// Warm.
			for i := 0; i < 64; i++ {
				if err := sys.Eng.Read(bdf, pick(i), buf); err != nil {
					panic(err)
				}
			}
			before := sys.Dev.Now()
			for i := 0; i < sends; i++ {
				if err := sys.Eng.Read(bdf, pick(i), buf); err != nil {
					panic(err)
				}
			}
			return float64(sys.Dev.Now()-before) / float64(sends)
		}
		next := newRand()
		if id == 0 {
			// Baseline IOMMU, persistent mappings, polling-mode sends:
			// random buffer from a large pool (always misses) vs a single
			// buffer (always hits).
			out.a = measure(func(int) uint64 { return iovas[next()%poolBuffers] })
			out.b = measure(func(int) uint64 { return iovas[0] })
			out.penalty = out.a - out.b
			out.micros = sys.Model.Micros(uint64(out.penalty))
			return out, nil
		}
		// rIOMMU: in-order ring access is always predicted; random access
		// costs only a flat-table DRAM fetch, far below a radix walk.
		out.a = measure(func(i int) uint64 { return iovas[i%poolBuffers] })
		out.b = measure(func(int) uint64 { return iovas[next()%poolBuffers] })
		return out, nil
	}

	halves, err := parallel.Map(cfg.Workers, []int{0, 1}, func(_ int, id int) (half, error) {
		return runHalf(id)
	})
	if err != nil {
		return res, err
	}
	res.RandomCycles = halves[0].a
	res.SingleCycles = halves[0].b
	res.MissPenaltyCycles = halves[0].penalty
	res.MissPenaltyMicros = halves[0].micros
	res.RInOrderCycles = halves[1].a
	res.RRandomCycles = halves[1].b
	return res, nil
}

// Cells emits the two halves of the microbenchmark.
func (r MissPenaltyResult) Cells() []Cell {
	return []Cell{
		C("misspenalty", "baseline", map[string]float64{
			"random_cycles":  r.RandomCycles,
			"single_cycles":  r.SingleCycles,
			"penalty_cycles": r.MissPenaltyCycles,
			"penalty_micros": r.MissPenaltyMicros,
		}),
		C("misspenalty", "riommu", map[string]float64{
			"inorder_cycles": r.RInOrderCycles,
			"random_cycles":  r.RRandomCycles,
		}),
	}
}

// Render prints the comparison.
func (r MissPenaltyResult) Render() string {
	t := stats.NewTable(
		"Sec 5.3. IOTLB miss penalty under user-level polling I/O (device-side cycles per send)",
		"experiment", "cycles/send")
	t.Row("baseline, random buffer from large pool (miss)", r.RandomCycles)
	t.Row("baseline, single buffer (hit)", r.SingleCycles)
	t.Row("=> miss penalty (paper: ~1532 cy / ~0.5us)",
		fmt.Sprintf("%.0f cy = %.2f us", r.MissPenaltyCycles, r.MissPenaltyMicros))
	t.Row("riommu, in-order ring access (prefetched)", r.RInOrderCycles)
	t.Row("riommu, random access (flat-table fetch)", r.RRandomCycles)
	return t.String()
}

func init() {
	register(Experiment{
		ID:    "misspenalty",
		Title: "Sec 5.3: IOTLB miss penalty in low-latency environments",
		Paper: "miss penalty ~0.5 us (1,532 cycles); approximates rIOMMU's benefit for user-level I/O",
		Run:   wrap(RunMissPenalty),
	})
}
