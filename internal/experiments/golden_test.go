package experiments

import (
	"bytes"
	"os"
	"testing"
)

// TestGoldenPurity is the tenancy-off purity gate in test form: the
// experiment layer never constructs a tenant host, so the full quick grid
// must keep reproducing the committed BENCH_golden.json byte for byte. A
// diff here means the multi-tenant layer leaked into the single-stage
// translation path (or an intentional metric change forgot `make
// bench-json`).
func TestGoldenPurity(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick grid is slow under -short")
	}
	want, err := os.ReadFile("../../BENCH_golden.json")
	if err != nil {
		t.Fatalf("reading committed golden: %v", err)
	}

	// The golden is generated serially; TestSerialParallelEquivalence covers
	// the worker-count axis, so purity is checked on the same serial path.
	cfg := Serial(Quick)
	results := RunAll(cfg, nil)
	rep, err := BuildReport(cfg, results)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("quick grid drifted from BENCH_golden.json (%d vs %d bytes); "+
			"if intentional refresh with `make bench-json`", len(want), len(got))
	}
}
