package experiments

import (
	"fmt"
	"strings"

	"riommu/internal/device"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// BenchKey identifies one benchmark on one NIC.
type BenchKey struct {
	Bench string
	NIC   string
}

// Figure12Result holds every cell of Figure 12: throughput and CPU per
// benchmark per NIC per mode.
type Figure12Result struct {
	NICs    []device.NICProfile
	Benches []string
	Modes   []sim.Mode
	Cells   map[BenchKey]map[sim.Mode]workload.Result
}

// RunFigure12 measures all five benchmarks on both NIC profiles in all
// seven modes.
func RunFigure12(q Quality) (Figure12Result, error) {
	res := Figure12Result{
		NICs:    []device.NICProfile{device.ProfileMLX, device.ProfileBRCM},
		Benches: []string{"stream", "rr", "apache-1M", "apache-1K", "memcached"},
		Modes:   sim.AllModes(),
		Cells:   map[BenchKey]map[sim.Mode]workload.Result{},
	}
	streamOpts := workload.StreamOpts{Messages: q.scale(100, 300), WarmupMessages: q.scale(50, 120)}
	rrOpts := workload.RROpts{Transactions: q.scale(300, 1500), Warmup: q.scale(80, 300)}
	ap1M := workload.ApacheOpts{FileBytes: 1 << 20, Requests: q.scale(6, 20), Warmup: 2}
	ap1K := workload.ApacheOpts{FileBytes: 1024, Requests: q.scale(100, 300), Warmup: q.scale(30, 80)}
	memOpts := workload.MemcachedOpts{Operations: q.scale(400, 1500), Warmup: q.scale(120, 400)}

	for _, nic := range res.NICs {
		runners := map[string]func(sim.Mode) (workload.Result, error){
			"stream":    func(m sim.Mode) (workload.Result, error) { return workload.NetperfStream(m, nic, streamOpts) },
			"rr":        func(m sim.Mode) (workload.Result, error) { return workload.NetperfRR(m, nic, rrOpts) },
			"apache-1M": func(m sim.Mode) (workload.Result, error) { return workload.Apache(m, nic, ap1M) },
			"apache-1K": func(m sim.Mode) (workload.Result, error) { return workload.Apache(m, nic, ap1K) },
			"memcached": func(m sim.Mode) (workload.Result, error) { return workload.Memcached(m, nic, memOpts) },
		}
		for _, bench := range res.Benches {
			key := BenchKey{Bench: bench, NIC: nic.Name}
			res.Cells[key] = map[sim.Mode]workload.Result{}
			for _, m := range res.Modes {
				r, err := runners[bench](m)
				if err != nil {
					return res, fmt.Errorf("%s/%s/%s: %w", nic.Name, bench, m, err)
				}
				res.Cells[key][m] = r
			}
		}
	}
	return res, nil
}

// Render prints one table per NIC with throughput and CPU per benchmark.
func (r Figure12Result) Render() string {
	var b strings.Builder
	for _, nic := range r.NICs {
		t := stats.NewTable(
			fmt.Sprintf("Figure 12 (%s). Throughput and CPU consumption per mode", nic.Name),
			"benchmark", "unit", "metric", "strict", "strict+", "defer", "defer+", "riommu-", "riommu", "none")
		t.AlignLeft(1).AlignLeft(2)
		for _, bench := range r.Benches {
			cells := r.Cells[BenchKey{Bench: bench, NIC: nic.Name}]
			tput := []string{bench, cells[sim.None].Unit, "tput"}
			cpu := []string{"", "%", "cpu"}
			for _, m := range r.Modes {
				tput = append(tput, fmt.Sprintf("%.4g", cells[m].Throughput))
				cpu = append(cpu, fmt.Sprintf("%.0f", cells[m].CPU*100))
			}
			t.RowStrings(tput)
			t.RowStrings(cpu)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "figure12",
		Title: "Figure 12: throughput and CPU for all benchmarks, modes and NICs",
		Paper: "mlx/stream: riommu 0.77x none, 7.56x strict; brcm: all modes but strict saturate 10GbE; rr/apache-1K/memcached per §5.2",
		Run: func(q Quality) (string, error) {
			r, err := RunFigure12(q)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	})
}
