package experiments

import (
	"fmt"
	"strings"

	"riommu/internal/device"
	"riommu/internal/parallel"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// BenchKey identifies one benchmark on one NIC.
type BenchKey struct {
	Bench string
	NIC   string
}

// Figure12Result holds every cell of Figure 12: throughput and CPU per
// benchmark per NIC per mode.
type Figure12Result struct {
	NICs    []device.NICProfile
	Benches []string
	Modes   []sim.Mode
	Matrix  map[BenchKey]map[sim.Mode]workload.Result
}

// RunFigure12 measures all five benchmarks on both NIC profiles in all
// seven modes. The full nic x benchmark x mode matrix is flattened into
// one cell grid; every cell builds its own simulated system.
func RunFigure12(cfg Config) (Figure12Result, error) {
	res := Figure12Result{
		NICs:    []device.NICProfile{device.ProfileMLX, device.ProfileBRCM},
		Benches: []string{"stream", "rr", "apache-1M", "apache-1K", "memcached"},
		Modes:   sim.AllModes(),
		Matrix:  map[BenchKey]map[sim.Mode]workload.Result{},
	}
	q := cfg.Quality
	streamOpts := workload.StreamOpts{Messages: q.scale(100, 300), WarmupMessages: q.scale(50, 120)}
	rrOpts := workload.RROpts{Transactions: q.scale(300, 1500), Warmup: q.scale(80, 300)}
	ap1M := workload.ApacheOpts{FileBytes: 1 << 20, Requests: q.scale(6, 20), Warmup: 2}
	ap1K := workload.ApacheOpts{FileBytes: 1024, Requests: q.scale(100, 300), Warmup: q.scale(30, 80)}
	memOpts := workload.MemcachedOpts{Operations: q.scale(400, 1500), Warmup: q.scale(120, 400)}

	runCell := func(nic device.NICProfile, bench string, m sim.Mode) (workload.Result, error) {
		switch bench {
		case "stream":
			return workload.NetperfStream(m, nic, streamOpts)
		case "rr":
			return workload.NetperfRR(m, nic, rrOpts)
		case "apache-1M":
			return workload.Apache(m, nic, ap1M)
		case "apache-1K":
			return workload.Apache(m, nic, ap1K)
		case "memcached":
			return workload.Memcached(m, nic, memOpts)
		}
		return workload.Result{}, fmt.Errorf("unknown benchmark %q", bench)
	}

	type gridKey struct {
		nic   device.NICProfile
		bench string
		mode  sim.Mode
	}
	var grid []gridKey
	for _, nic := range res.NICs {
		for _, bench := range res.Benches {
			for _, m := range res.Modes {
				grid = append(grid, gridKey{nic: nic, bench: bench, mode: m})
			}
		}
	}
	cells, err := parallel.Map(cfg.Workers, grid, func(_ int, k gridKey) (workload.Result, error) {
		r, err := runCell(k.nic, k.bench, k.mode)
		if err != nil {
			return r, fmt.Errorf("%s/%s/%s: %w", k.nic.Name, k.bench, k.mode, err)
		}
		return r, nil
	})
	if err != nil {
		return res, err
	}
	for i, k := range grid {
		key := BenchKey{Bench: k.bench, NIC: k.nic.Name}
		if res.Matrix[key] == nil {
			res.Matrix[key] = map[sim.Mode]workload.Result{}
		}
		res.Matrix[key][k.mode] = cells[i]
	}
	return res, nil
}

// cellMetrics emits one Figure 12 matrix point's metrics.
func cellMetrics(r workload.Result) map[string]float64 {
	return map[string]float64{
		"throughput":      r.Throughput,
		"cpu":             r.CPU,
		"cycles_per_unit": r.CyclesPerUnit,
		"latency_us":      r.LatencyMicros,
		"units":           float64(r.Units),
	}
}

// Cells emits the full matrix in grid order.
func (r Figure12Result) Cells() []Cell {
	var out []Cell
	for _, nic := range r.NICs {
		for _, bench := range r.Benches {
			cells := r.Matrix[BenchKey{Bench: bench, NIC: nic.Name}]
			for _, m := range r.Modes {
				out = append(out, C("figure12", nic.Name+"/"+bench+"/"+m.String(), cellMetrics(cells[m])))
			}
		}
	}
	return out
}

// Render prints one table per NIC with throughput and CPU per benchmark.
func (r Figure12Result) Render() string {
	var b strings.Builder
	for _, nic := range r.NICs {
		t := stats.NewTable(
			fmt.Sprintf("Figure 12 (%s). Throughput and CPU consumption per mode", nic.Name),
			"benchmark", "unit", "metric", "strict", "strict+", "defer", "defer+", "riommu-", "riommu", "none")
		t.AlignLeft(1).AlignLeft(2)
		for _, bench := range r.Benches {
			cells := r.Matrix[BenchKey{Bench: bench, NIC: nic.Name}]
			tput := []string{bench, cells[sim.None].Unit, "tput"}
			cpu := []string{"", "%", "cpu"}
			for _, m := range r.Modes {
				tput = append(tput, fmt.Sprintf("%.4g", cells[m].Throughput))
				cpu = append(cpu, fmt.Sprintf("%.0f", cells[m].CPU*100))
			}
			t.RowStrings(tput)
			t.RowStrings(cpu)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "figure12",
		Title: "Figure 12: throughput and CPU for all benchmarks, modes and NICs",
		Paper: "mlx/stream: riommu 0.77x none, 7.56x strict; brcm: all modes but strict saturate 10GbE; rr/apache-1K/memcached per §5.2",
		Run:   wrap(RunFigure12),
	})
}
