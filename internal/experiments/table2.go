package experiments

import (
	"fmt"
	"strings"

	"riommu/internal/sim"
	"riommu/internal/stats"
)

// Table2Paper records the paper's normalized throughput ratios (riommu
// divided by each mode) for spot comparison in tests and EXPERIMENTS.md.
var Table2Paper = map[BenchKey]map[sim.Mode]float64{
	{Bench: "stream", NIC: "mlx"}:     {sim.Strict: 7.56, sim.StrictPlus: 4.28, sim.Defer: 3.79, sim.DeferPlus: 2.57, sim.None: 0.77},
	{Bench: "rr", NIC: "mlx"}:         {sim.Strict: 1.25, sim.StrictPlus: 1.09, sim.Defer: 1.07, sim.DeferPlus: 1.03, sim.None: 0.96},
	{Bench: "apache-1M", NIC: "mlx"}:  {sim.Strict: 5.80, sim.StrictPlus: 1.77, sim.Defer: 1.73, sim.DeferPlus: 1.31, sim.None: 0.83},
	{Bench: "apache-1K", NIC: "mlx"}:  {sim.Strict: 2.32, sim.StrictPlus: 1.08, sim.Defer: 1.07, sim.DeferPlus: 1.03, sim.None: 0.92},
	{Bench: "memcached", NIC: "mlx"}:  {sim.Strict: 4.88, sim.StrictPlus: 1.19, sim.Defer: 1.28, sim.DeferPlus: 1.05, sim.None: 0.83},
	{Bench: "stream", NIC: "brcm"}:    {sim.Strict: 2.17, sim.StrictPlus: 1.00, sim.Defer: 1.00, sim.DeferPlus: 1.00, sim.None: 1.00},
	{Bench: "rr", NIC: "brcm"}:        {sim.Strict: 1.21, sim.StrictPlus: 1.06, sim.Defer: 1.05, sim.DeferPlus: 1.03, sim.None: 1.00},
	{Bench: "apache-1M", NIC: "brcm"}: {sim.Strict: 1.20, sim.StrictPlus: 1.01, sim.Defer: 1.00, sim.DeferPlus: 1.00, sim.None: 1.00},
	{Bench: "apache-1K", NIC: "brcm"}: {sim.Strict: 1.29, sim.StrictPlus: 1.18, sim.Defer: 1.13, sim.DeferPlus: 1.07, sim.None: 0.93},
	{Bench: "memcached", NIC: "brcm"}: {sim.Strict: 1.88, sim.StrictPlus: 1.45, sim.Defer: 1.27, sim.DeferPlus: 1.18, sim.None: 0.84},
}

// Table2Result holds the normalized ratios derived from Figure 12.
type Table2Result struct {
	Fig Figure12Result
}

// RunTable2 derives Table 2 from a Figure 12 run (which fans the benchmark
// matrix across cfg.Workers).
func RunTable2(cfg Config) (Table2Result, error) {
	fig, err := RunFigure12(cfg)
	return Table2Result{Fig: fig}, err
}

// Cells emits the normalized ratios for both rIOMMU variants against every
// baseline mode.
func (r Table2Result) Cells() []Cell {
	baselines := []sim.Mode{sim.Strict, sim.StrictPlus, sim.Defer, sim.DeferPlus, sim.None}
	var out []Cell
	for _, variant := range []sim.Mode{sim.RIOMMUMinus, sim.RIOMMU} {
		for _, nic := range r.Fig.NICs {
			for _, bench := range r.Fig.Benches {
				key := BenchKey{Bench: bench, NIC: nic.Name}
				for _, vs := range baselines {
					id := variant.String() + "/" + nic.Name + "/" + bench + "/vs-" + vs.String()
					out = append(out, C("table2", id, map[string]float64{
						"tput_ratio": r.ThroughputRatio(key, variant, vs),
						"cpu_ratio":  r.CPURatio(key, variant, vs),
					}))
				}
			}
		}
	}
	return out
}

// ThroughputRatio returns measured riommuVariant/mode throughput.
func (r Table2Result) ThroughputRatio(key BenchKey, variant, vs sim.Mode) float64 {
	cells := r.Fig.Matrix[key]
	if cells[vs].Throughput == 0 {
		return 0
	}
	return cells[variant].Throughput / cells[vs].Throughput
}

// CPURatio returns measured riommuVariant/mode CPU consumption.
func (r Table2Result) CPURatio(key BenchKey, variant, vs sim.Mode) float64 {
	cells := r.Fig.Matrix[key]
	if cells[vs].CPU == 0 {
		return 0
	}
	return cells[variant].CPU / cells[vs].CPU
}

// Render prints the normalized table, paper values in parentheses for the
// riommu column.
func (r Table2Result) Render() string {
	var b strings.Builder
	baselines := []sim.Mode{sim.Strict, sim.StrictPlus, sim.Defer, sim.DeferPlus, sim.None}
	for _, variant := range []sim.Mode{sim.RIOMMUMinus, sim.RIOMMU} {
		t := stats.NewTable(
			fmt.Sprintf("Table 2 (%s divided by). Normalized throughput / cpu; riommu row shows (paper) alongside", variant),
			"nic", "benchmark", "metric", "strict", "strict+", "defer", "defer+", "none")
		t.AlignLeft(1).AlignLeft(2)
		for _, nic := range r.Fig.NICs {
			for _, bench := range r.Fig.Benches {
				key := BenchKey{Bench: bench, NIC: nic.Name}
				tput := []string{nic.Name, bench, "tput"}
				cpu := []string{"", "", "cpu"}
				for _, vs := range baselines {
					cell := fmt.Sprintf("%.2f", r.ThroughputRatio(key, variant, vs))
					if variant == sim.RIOMMU {
						if p, ok := Table2Paper[key][vs]; ok {
							cell += fmt.Sprintf(" (%.2f)", p)
						}
					}
					tput = append(tput, cell)
					cpu = append(cpu, fmt.Sprintf("%.2f", r.CPURatio(key, variant, vs)))
				}
				t.RowStrings(tput)
				t.RowStrings(cpu)
			}
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Table 2: normalized rIOMMU performance ratios",
		Paper: "riommu throughput 2.90-7.56x strict modes, 1.74-3.79x deferred (mlx stream); 0.77-1.00x none; cpu 0.36-1.00x",
		Run:   wrap(RunTable2),
	})
}
