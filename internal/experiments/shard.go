package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Shard returns the experiments shard index owns out of sel: every count-th
// experiment starting at index. count <= 1 returns sel unchanged. Because
// every experiment's cells are pure functions of (code, quality, seed), the
// shard split never changes any cell — K shard reports merged with
// MergeReports are byte-identical to one full run.
func Shard(sel []Experiment, index, count int) []Experiment {
	if count <= 1 {
		return sel
	}
	var out []Experiment
	for i, e := range sel {
		if i%count == index {
			out = append(out, e)
		}
	}
	return out
}

// ReadReport loads one -json report written by riommu-bench.
func ReadReport(path string) (Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return Report{}, fmt.Errorf("report %s: %w", path, err)
	}
	return rep, nil
}

// MergeReports combines per-shard reports into the canonical full report:
// experiments are collected across all inputs and re-sorted into registry
// order (the order a full serial run emits), so the merged bytes equal an
// unsharded run over the union. Mixed qualities, interrupted shards, and
// duplicate experiments are refused — each would silently change what the
// merged report certifies.
func MergeReports(reports []Report) (Report, error) {
	if len(reports) == 0 {
		return Report{}, fmt.Errorf("experiments: nothing to merge")
	}
	out := Report{Quality: reports[0].Quality}
	seen := map[string]bool{}
	for _, rep := range reports {
		if rep.Interrupted {
			return Report{}, fmt.Errorf("experiments: refusing to merge an interrupted shard report")
		}
		if rep.Quality != out.Quality {
			return Report{}, fmt.Errorf("experiments: mixed qualities %q and %q", out.Quality, rep.Quality)
		}
		for _, e := range rep.Experiments {
			if seen[e.ID] {
				return Report{}, fmt.Errorf("experiments: %s present in more than one shard report", e.ID)
			}
			seen[e.ID] = true
			out.Experiments = append(out.Experiments, e)
		}
	}
	sort.Slice(out.Experiments, func(i, j int) bool {
		return out.Experiments[i].ID < out.Experiments[j].ID
	})
	return out, nil
}
