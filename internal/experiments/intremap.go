package experiments

import (
	"fmt"
	"strings"

	"riommu/internal/device"
	"riommu/internal/multicore"
	"riommu/internal/parallel"
	"riommu/internal/sim"
	"riommu/internal/stats"
)

// IntremapKey identifies one interrupt-remapping overhead point: a
// protection mode with completion-interrupt remapping on or off.
type IntremapKey struct {
	Mode  sim.Mode
	Remap bool
}

// IntremapResult holds the interrupt-remapping overhead experiment: for
// every presentation mode at a fixed core count, the 4-core scale-out run
// is measured with MSI-X completion interrupts posted through the remapper
// (table walk + IEC cache + per-core dispatch charges) and again with
// interrupts off, isolating what interrupt delivery adds on top of the DMA
// protection cost.
type IntremapResult struct {
	Modes  []sim.Mode
	Cores  int
	Matrix map[IntremapKey]multicore.Result
}

// intremapCores fixes the experiment's core count: enough queues that the
// per-core posting/delivery split is exercised, small enough to stay quick.
const intremapCores = 4

// RunIntremap sweeps modes x {remap on, off} through the multicore engine
// on the mlx profile. The remapper validates every completion message
// (remappable format in the protected modes, compatibility pass-through in
// none) and charges the dispatch to the receiving core's timeline.
func RunIntremap(cfg Config) (IntremapResult, error) {
	res := IntremapResult{
		Modes:  sim.AllModes(),
		Cores:  intremapCores,
		Matrix: map[IntremapKey]multicore.Result{},
	}
	q := cfg.Quality
	packets, warmup := q.scale(160, 800), q.scale(60, 240)

	var grid []IntremapKey
	for _, m := range res.Modes {
		for _, remap := range []bool{false, true} {
			grid = append(grid, IntremapKey{Mode: m, Remap: remap})
		}
	}
	cells, err := parallel.Map(cfg.Workers, grid, func(_ int, k IntremapKey) (multicore.Result, error) {
		r, err := multicore.Run(multicore.Params{
			Mode:           k.Mode,
			Profile:        device.ProfileMLX,
			Cores:          res.Cores,
			PacketsPerCore: packets,
			WarmupPerCore:  warmup,
			IntRemap:       k.Remap,
		})
		if err != nil {
			return r, fmt.Errorf("%s/remap=%v: %w", k.Mode, k.Remap, err)
		}
		return r, nil
	})
	if err != nil {
		return res, err
	}
	for i, k := range grid {
		res.Matrix[k] = cells[i]
	}
	return res, nil
}

// Cells emits the matrix in grid order.
func (r IntremapResult) Cells() []Cell {
	var out []Cell
	for _, m := range r.Modes {
		for _, remap := range []bool{false, true} {
			c := r.Matrix[IntremapKey{Mode: m, Remap: remap}]
			tag := "off"
			if remap {
				tag = "on"
			}
			out = append(out, C("intremap",
				fmt.Sprintf("mlx/%s/remap=%s", m, tag),
				map[string]float64{
					"agg_gbps":       c.AggGbps,
					"cycles_per_pkt": c.MeanCyclesPerPacket,
					"int_delivered":  float64(c.Int.Delivered),
					"int_posted":     float64(c.Int.PostedDeliv),
					"int_blocked":    float64(c.Int.Blocked()),
					"iec_hits":       float64(c.Int.CacheHits),
					"iec_misses":     float64(c.Int.CacheMisses),
				}))
		}
	}
	return out
}

// Render prints the per-mode overhead table: cycles per packet with and
// without remapped completion interrupts, the delta, and the IEC cache's
// hit behaviour.
func (r IntremapResult) Render() string {
	var b strings.Builder
	t := stats.NewTable(
		fmt.Sprintf("Interrupt remapping overhead (mlx, %d cores). Cycles/packet with posted MSI-X vs without", r.Cores),
		"mode", "C plain", "C remapped", "delta", "delivered", "posted", "blocked", "IEC hit%")
	t.AlignLeft(0)
	for _, m := range r.Modes {
		plain := r.Matrix[IntremapKey{Mode: m}]
		on := r.Matrix[IntremapKey{Mode: m, Remap: true}]
		hitPct := 0.0
		if lookups := on.Int.CacheHits + on.Int.CacheMisses; lookups > 0 {
			hitPct = 100 * float64(on.Int.CacheHits) / float64(lookups)
		}
		t.Row(m.String(),
			fmt.Sprintf("%.1f", plain.MeanCyclesPerPacket),
			fmt.Sprintf("%.1f", on.MeanCyclesPerPacket),
			fmt.Sprintf("%+.1f", on.MeanCyclesPerPacket-plain.MeanCyclesPerPacket),
			on.Int.Delivered, on.Int.PostedDeliv, on.Int.Blocked(),
			fmt.Sprintf("%.1f%%", hitPct))
	}
	b.WriteString(t.String())
	return b.String()
}

func init() {
	register(Experiment{
		ID:    "intremap",
		Title: "Interrupt remapping overhead: posted MSI-X delivery per mode",
		Paper: "§2/§4 extension: the IOMMU's interrupt-remapping unit validates every MSI against the IRT; the experiment charges the walk/IEC-cache and per-core dispatch costs and isolates their overhead on the scale-out workload",
		Run:   wrap(RunIntremap),
	})
}
