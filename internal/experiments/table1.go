package experiments

import (
	"strings"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/parallel"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// Table1Result holds per-mode component averages: map rows then unmap rows.
type Table1Result struct {
	Modes []sim.Mode
	// Map components per mode: iova alloc, page table, other, sum.
	MapAlloc, MapPT, MapOther, MapSum map[sim.Mode]float64
	// Unmap components per mode: iova find, iova free, page table,
	// iotlb inv, other, sum.
	UnmapFind, UnmapFree, UnmapPT, UnmapInv, UnmapOther, UnmapSum map[sim.Mode]float64
}

// Table1Paper holds the paper's measured values for comparison.
var Table1Paper = map[string]map[sim.Mode]float64{
	"iova alloc": {sim.Strict: 3986, sim.StrictPlus: 92, sim.Defer: 1674, sim.DeferPlus: 108},
	"page table": {sim.Strict: 588, sim.StrictPlus: 590, sim.Defer: 533, sim.DeferPlus: 577},
	"map other":  {sim.Strict: 44, sim.StrictPlus: 45, sim.Defer: 44, sim.DeferPlus: 42},
	"iova find":  {sim.Strict: 249, sim.StrictPlus: 418, sim.Defer: 263, sim.DeferPlus: 454},
	"iova free":  {sim.Strict: 159, sim.StrictPlus: 62, sim.Defer: 189, sim.DeferPlus: 57},
	"unmap pt":   {sim.Strict: 438, sim.StrictPlus: 427, sim.Defer: 471, sim.DeferPlus: 504},
	"iotlb inv":  {sim.Strict: 2127, sim.StrictPlus: 2135, sim.Defer: 9, sim.DeferPlus: 9},
	"unmap oth":  {sim.Strict: 26, sim.StrictPlus: 25, sim.Defer: 205, sim.DeferPlus: 216},
}

// RunTable1 measures the map/unmap component breakdown under the Netperf
// stream workload on the mlx profile, as the paper did (§3.2). One cell
// per baseline mode.
func RunTable1(cfg Config) (Table1Result, error) {
	res := Table1Result{
		Modes:      sim.BaselineModes(),
		MapAlloc:   map[sim.Mode]float64{},
		MapPT:      map[sim.Mode]float64{},
		MapOther:   map[sim.Mode]float64{},
		MapSum:     map[sim.Mode]float64{},
		UnmapFind:  map[sim.Mode]float64{},
		UnmapFree:  map[sim.Mode]float64{},
		UnmapPT:    map[sim.Mode]float64{},
		UnmapInv:   map[sim.Mode]float64{},
		UnmapOther: map[sim.Mode]float64{},
		UnmapSum:   map[sim.Mode]float64{},
	}
	opts := workload.StreamOpts{
		Messages:       cfg.Quality.scale(120, 400),
		WarmupMessages: cfg.Quality.scale(60, 150),
	}
	cells, err := parallel.Map(cfg.Workers, res.Modes, func(_ int, m sim.Mode) (workload.Result, error) {
		return workload.NetperfStream(m, device.ProfileMLX, opts)
	})
	if err != nil {
		return res, err
	}
	for i, m := range res.Modes {
		b := cells[i].Breakdown
		res.MapAlloc[m] = b.Average(cycles.MapIOVAAlloc)
		res.MapPT[m] = b.Average(cycles.MapPageTable)
		res.MapOther[m] = b.Average(cycles.MapOther)
		res.MapSum[m] = res.MapAlloc[m] + res.MapPT[m] + res.MapOther[m]
		res.UnmapFind[m] = b.Average(cycles.UnmapIOVAFind)
		res.UnmapFree[m] = b.Average(cycles.UnmapIOVAFree)
		res.UnmapPT[m] = b.Average(cycles.UnmapPageTable)
		res.UnmapInv[m] = b.Average(cycles.UnmapIOTLBInv)
		res.UnmapOther[m] = b.Average(cycles.UnmapOther)
		res.UnmapSum[m] = res.UnmapFind[m] + res.UnmapFree[m] + res.UnmapPT[m] +
			res.UnmapInv[m] + res.UnmapOther[m]
	}
	return res, nil
}

// Cells emits the per-mode component breakdown.
func (r Table1Result) Cells() []Cell {
	out := make([]Cell, 0, len(r.Modes))
	for _, m := range r.Modes {
		out = append(out, C("table1", m.String(), map[string]float64{
			"map_iova_alloc": r.MapAlloc[m],
			"map_page_table": r.MapPT[m],
			"map_other":      r.MapOther[m],
			"map_sum":        r.MapSum[m],
			"unmap_find":     r.UnmapFind[m],
			"unmap_free":     r.UnmapFree[m],
			"unmap_pt":       r.UnmapPT[m],
			"unmap_inv":      r.UnmapInv[m],
			"unmap_other":    r.UnmapOther[m],
			"unmap_sum":      r.UnmapSum[m],
		}))
	}
	return out
}

// Render produces the paper-style table with paper values alongside.
func (r Table1Result) Render() string {
	t := stats.NewTable(
		"Table 1. Average cycles breakdown of the (un)map functions (measured | paper)",
		"function", "component", "strict", "strict+", "defer", "defer+")
	t.AlignLeft(1)
	cell := func(meas map[sim.Mode]float64, paperKey string, m sim.Mode) string {
		p := Table1Paper[paperKey][m]
		return strings.TrimSpace(stats.Ratio(meas[m], 1) + " | " + stats.Ratio(p, 1))
	}
	row := func(fn, comp, paperKey string, meas map[sim.Mode]float64) {
		t.RowStrings([]string{fn, comp,
			cell(meas, paperKey, sim.Strict),
			cell(meas, paperKey, sim.StrictPlus),
			cell(meas, paperKey, sim.Defer),
			cell(meas, paperKey, sim.DeferPlus)})
	}
	row("map", "iova alloc", "iova alloc", r.MapAlloc)
	row("", "page table", "page table", r.MapPT)
	row("", "other", "map other", r.MapOther)
	sumRow := func(fn string, meas map[sim.Mode]float64, paperSums map[sim.Mode]float64) {
		t.RowStrings([]string{fn, "sum",
			stats.Ratio(meas[sim.Strict], 1) + " | " + stats.Ratio(paperSums[sim.Strict], 1),
			stats.Ratio(meas[sim.StrictPlus], 1) + " | " + stats.Ratio(paperSums[sim.StrictPlus], 1),
			stats.Ratio(meas[sim.Defer], 1) + " | " + stats.Ratio(paperSums[sim.Defer], 1),
			stats.Ratio(meas[sim.DeferPlus], 1) + " | " + stats.Ratio(paperSums[sim.DeferPlus], 1)})
	}
	sumRow("", r.MapSum, map[sim.Mode]float64{sim.Strict: 4618, sim.StrictPlus: 727, sim.Defer: 2251, sim.DeferPlus: 727})
	row("unmap", "iova find", "iova find", r.UnmapFind)
	row("", "iova free", "iova free", r.UnmapFree)
	row("", "page table", "unmap pt", r.UnmapPT)
	row("", "iotlb inv", "iotlb inv", r.UnmapInv)
	row("", "other", "unmap oth", r.UnmapOther)
	sumRow("", r.UnmapSum, map[sim.Mode]float64{sim.Strict: 2999, sim.StrictPlus: 3067, sim.Defer: 1137, sim.DeferPlus: 1240})
	return t.String()
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: (un)map cycle breakdown per protection mode",
		Paper: "strict map dominated by IOVA alloc (3,986 cy); unmap by IOTLB inv (2,127 cy); '+' allocator cuts alloc to ~92 cy; defer cuts inv to 9 cy",
		Run:   wrap(RunTable1),
	})
}
