package experiments

import (
	"fmt"

	"riommu/internal/device"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// MethodologyResult reproduces the §5.1 validation of the paper's simulation
// methodology using the two pass-through modes:
//
//   - HWpt: the IOMMU translates each IOVA to the identical physical address
//     without consulting the IOTLB or page tables.
//   - SWpt: a real page table maps all of physical memory identity, so every
//     DMA misses and walks like a genuine translation.
//
// The paper found: (1) RR performance of HWpt and SWpt is identical — and
// identical to no-IOMMU — because stack/interrupt latencies hide the IOTLB
// miss penalty entirely; (2) stream throughput of both trails no-IOMMU by
// ~10%, caused purely by ~200 cycles of kernel DMA-API abstraction code per
// packet, not by translation activity. Together these justify simulating
// IOMMU proposals by spending CPU cycles alone.
type MethodologyResult struct {
	Modes []sim.Mode // none, hwpt, swpt

	StreamGbps map[sim.Mode]float64
	StreamC    map[sim.Mode]float64
	RRMicros   map[sim.Mode]float64

	// SWptMisses counts the device-side IOTLB misses SWpt provokes — real
	// walks that nonetheless do not move the throughput needle.
	SWptMisses uint64
}

// RunMethodology measures stream and RR under none/HWpt/SWpt.
func RunMethodology(q Quality) (MethodologyResult, error) {
	res := MethodologyResult{
		Modes:      []sim.Mode{sim.None, sim.HWpt, sim.SWpt},
		StreamGbps: map[sim.Mode]float64{},
		StreamC:    map[sim.Mode]float64{},
		RRMicros:   map[sim.Mode]float64{},
	}
	streamOpts := workload.StreamOpts{Messages: q.scale(80, 250), WarmupMessages: q.scale(30, 80)}
	rrOpts := workload.RROpts{Transactions: q.scale(300, 1500), Warmup: q.scale(80, 200)}

	for _, m := range res.Modes {
		st, err := workload.NetperfStream(m, device.ProfileMLX, streamOpts)
		if err != nil {
			return res, err
		}
		res.StreamGbps[m] = st.Throughput
		res.StreamC[m] = st.CyclesPerUnit

		rr, err := workload.NetperfRR(m, device.ProfileMLX, rrOpts)
		if err != nil {
			return res, err
		}
		res.RRMicros[m] = rr.LatencyMicros
	}

	// Count the SWpt walks directly: one short run with the stats read out.
	sys, err := sim.NewSystem(sim.SWpt, workload.MemPages)
	if err != nil {
		return res, err
	}
	drv, _, err := sys.AttachNIC(device.ProfileMLX, workload.NICBDF)
	if err != nil {
		return res, err
	}
	payload := make([]byte, 1000)
	for i := 0; i < 256; i++ {
		if err := drv.Send(payload); err != nil {
			return res, err
		}
	}
	if _, err := drv.PumpTx(256); err != nil {
		return res, err
	}
	if _, err := drv.ReapTx(); err != nil {
		return res, err
	}
	res.SWptMisses = sys.BaseHW.TLB().Stats().Misses
	return res, nil
}

// Render prints the validation table.
func (r MethodologyResult) Render() string {
	t := stats.NewTable(
		"Sec 5.1. Methodology validation: pass-through modes vs no IOMMU (mlx)",
		"mode", "stream Gbps", "C (cy/pkt)", "RR rtt (us)")
	for _, m := range r.Modes {
		t.Row(m.String(), r.StreamGbps[m], r.StreamC[m], r.RRMicros[m])
	}
	out := t.String()
	out += fmt.Sprintf("HWpt/none stream = %.2f (paper ~0.90: ~200 abstraction cycles/packet)\n",
		r.StreamGbps[sim.HWpt]/r.StreamGbps[sim.None])
	out += fmt.Sprintf("SWpt provoked %d real IOTLB misses/walks without moving throughput (= HWpt)\n",
		r.SWptMisses)
	return out
}

func init() {
	register(Experiment{
		ID:    "methodology",
		Title: "Sec 5.1: HWpt/SWpt methodology validation",
		Paper: "HWpt == SWpt everywhere; RR identical to none; stream ~10% below none, caused by ~200 cycles of kernel abstraction, not translation",
		Run: func(q Quality) (string, error) {
			r, err := RunMethodology(q)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	})
}
