package experiments

import (
	"fmt"

	"riommu/internal/device"
	"riommu/internal/parallel"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// MethodologyResult reproduces the §5.1 validation of the paper's simulation
// methodology using the two pass-through modes:
//
//   - HWpt: the IOMMU translates each IOVA to the identical physical address
//     without consulting the IOTLB or page tables.
//   - SWpt: a real page table maps all of physical memory identity, so every
//     DMA misses and walks like a genuine translation.
//
// The paper found: (1) RR performance of HWpt and SWpt is identical — and
// identical to no-IOMMU — because stack/interrupt latencies hide the IOTLB
// miss penalty entirely; (2) stream throughput of both trails no-IOMMU by
// ~10%, caused purely by ~200 cycles of kernel DMA-API abstraction code per
// packet, not by translation activity. Together these justify simulating
// IOMMU proposals by spending CPU cycles alone.
type MethodologyResult struct {
	Modes []sim.Mode // none, hwpt, swpt

	StreamGbps map[sim.Mode]float64
	StreamC    map[sim.Mode]float64
	RRMicros   map[sim.Mode]float64

	// SWptMisses counts the device-side IOTLB misses SWpt provokes — real
	// walks that nonetheless do not move the throughput needle.
	SWptMisses uint64
}

// RunMethodology measures stream and RR under none/HWpt/SWpt. Each
// (mode, benchmark) pair is one cell; the SWpt walk count is a final cell
// of its own.
func RunMethodology(cfg Config) (MethodologyResult, error) {
	res := MethodologyResult{
		Modes:      []sim.Mode{sim.None, sim.HWpt, sim.SWpt},
		StreamGbps: map[sim.Mode]float64{},
		StreamC:    map[sim.Mode]float64{},
		RRMicros:   map[sim.Mode]float64{},
	}
	q := cfg.Quality
	streamOpts := workload.StreamOpts{Messages: q.scale(80, 250), WarmupMessages: q.scale(30, 80)}
	rrOpts := workload.RROpts{Transactions: q.scale(300, 1500), Warmup: q.scale(80, 200)}

	// Grid: per mode a stream cell and an RR cell, then one walk-count cell.
	streams := make([]workload.Result, len(res.Modes))
	rrs := make([]workload.Result, len(res.Modes))
	err := parallel.Run(cfg.Workers, 2*len(res.Modes)+1, func(i int) error {
		switch {
		case i < len(res.Modes):
			st, err := workload.NetperfStream(res.Modes[i], device.ProfileMLX, streamOpts)
			streams[i] = st
			return err
		case i < 2*len(res.Modes):
			rr, err := workload.NetperfRR(res.Modes[i-len(res.Modes)], device.ProfileMLX, rrOpts)
			rrs[i-len(res.Modes)] = rr
			return err
		}
		// Count the SWpt walks directly: one short run with the stats read
		// out.
		sys, err := sim.NewSystem(sim.SWpt, workload.MemPages)
		if err != nil {
			return err
		}
		defer sys.Close()
		drv, _, err := sys.AttachNIC(device.ProfileMLX, workload.NICBDF)
		if err != nil {
			return err
		}
		payload := make([]byte, 1000)
		for i := 0; i < 256; i++ {
			if err := drv.Send(payload); err != nil {
				return err
			}
		}
		if _, err := drv.PumpTx(256); err != nil {
			return err
		}
		if _, err := drv.ReapTx(); err != nil {
			return err
		}
		res.SWptMisses = sys.BaseHW.TLB().Stats().Misses
		return nil
	})
	if err != nil {
		return res, err
	}
	for i, m := range res.Modes {
		res.StreamGbps[m] = streams[i].Throughput
		res.StreamC[m] = streams[i].CyclesPerUnit
		res.RRMicros[m] = rrs[i].LatencyMicros
	}
	return res, nil
}

// Cells emits the per-mode validation points.
func (r MethodologyResult) Cells() []Cell {
	var out []Cell
	for _, m := range r.Modes {
		out = append(out, C("methodology", m.String(), map[string]float64{
			"stream_gbps":       r.StreamGbps[m],
			"cycles_per_packet": r.StreamC[m],
			"rr_rtt_us":         r.RRMicros[m],
		}))
	}
	out = append(out, C("methodology", "swpt-misses", map[string]float64{
		"iotlb_misses": float64(r.SWptMisses),
	}))
	return out
}

// Render prints the validation table.
func (r MethodologyResult) Render() string {
	t := stats.NewTable(
		"Sec 5.1. Methodology validation: pass-through modes vs no IOMMU (mlx)",
		"mode", "stream Gbps", "C (cy/pkt)", "RR rtt (us)")
	for _, m := range r.Modes {
		t.Row(m.String(), r.StreamGbps[m], r.StreamC[m], r.RRMicros[m])
	}
	out := t.String()
	out += fmt.Sprintf("HWpt/none stream = %.2f (paper ~0.90: ~200 abstraction cycles/packet)\n",
		r.StreamGbps[sim.HWpt]/r.StreamGbps[sim.None])
	out += fmt.Sprintf("SWpt provoked %d real IOTLB misses/walks without moving throughput (= HWpt)\n",
		r.SWptMisses)
	return out
}

func init() {
	register(Experiment{
		ID:    "methodology",
		Title: "Sec 5.1: HWpt/SWpt methodology validation",
		Paper: "HWpt == SWpt everywhere; RR identical to none; stream ~10% below none, caused by ~200 cycles of kernel abstraction, not translation",
		Run:   wrap(RunMethodology),
	})
}
