package experiments

import (
	"fmt"
	"strings"

	"riommu/internal/device"
	"riommu/internal/parallel"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "figS2",
		Title: "Figure S2: connection-churn collapse, kernel vs bypass paths",
		Paper: "Extrapolation: the paper's map/unmap costs (Table 1) applied to " +
			"datacenter flow churn. Short-lived flows turn every packet into an " +
			"IOVA alloc + page-table update + invalidation; strict collapses, " +
			"deferral is dragged down by its allocator, rIOMMU holds, and the " +
			"kernel-bypass path (persistent mappings, §5.3) rides at line rate.",
		Run: wrap(RunFigS2),
	})
}

// FigS2Key identifies one churn-sweep matrix point.
type FigS2Key struct {
	Conns int
	Path  string // "kernel" or "bypass"
	Mode  sim.Mode
}

// FigS2Result holds Figure S2: throughput versus concurrent-connection
// count for every protection mode on both data paths of the traffic
// engine, on the mlx profile (the paper's high-rate NIC).
type FigS2Result struct {
	Conns  []int
	Paths  []string
	Modes  []sim.Mode
	Matrix map[FigS2Key]traffic.Result
}

// FigS2Seed is the base seed; each cell derives its own from its key.
const FigS2Seed = 42

// figS2Conns returns the swept fleet sizes, log-spaced 1K to 1M.
func figS2Conns(q Quality) []int {
	if q == Full {
		return []int{1_000, 10_000, 100_000, 1_000_000}
	}
	return []int{1_000, 32_000, 1_000_000}
}

// figS2Cell derives one cell's traffic Config from its key. The fleet size
// maps to the churn rate — the live table is a fixed-size window onto the
// fleet, and the per-flow packet budget shrinks as connections grow (a
// fixed packet arrival rate spread over more, shorter flows), so 1M
// connections is the one-packet-per-flow map/unmap storm regime.
func figS2Cell(q Quality, k FigS2Key) traffic.Config {
	slots := k.Conns
	slotCap := q.scale(256, 2048)
	if slots > slotCap {
		slots = slotCap
	}
	mean := (1 << 20) / k.Conns
	if mean < 1 {
		mean = 1
	}
	bypass := 0
	if k.Path == "bypass" {
		bypass = 1000
	}
	return traffic.Config{
		Mode:            k.Mode,
		Profile:         device.ProfileMLX,
		Seed:            parallel.CellSeed(FigS2Seed, figS2ID(k)),
		TableSlots:      slots,
		MeanFlowPackets: mean,
		BypassPermille:  bypass,
		Ticks:           q.scale(12, 96),
		WarmupTicks:     q.scale(4, 24),
		MsgsPerTick:     q.scale(6, 16),
		IncastEvery:     4,
		IncastFan:       q.scale(12, 48),
		Diurnal:         true,
		Audit:           true,
	}
}

func figS2ID(k FigS2Key) string {
	return fmt.Sprintf("conns=%d/%s/%s", k.Conns, k.Path, k.Mode)
}

// RunFigS2 sweeps connections x paths x modes through the traffic engine.
// Every cell is an independent seeded world, so the sweep parallelizes
// byte-identically.
func RunFigS2(cfg Config) (FigS2Result, error) {
	res := FigS2Result{
		Conns:  figS2Conns(cfg.Quality),
		Paths:  []string{"kernel", "bypass"},
		Modes:  sim.AllModes(),
		Matrix: map[FigS2Key]traffic.Result{},
	}
	var grid []FigS2Key
	for _, conns := range res.Conns {
		for _, path := range res.Paths {
			for _, m := range res.Modes {
				grid = append(grid, FigS2Key{Conns: conns, Path: path, Mode: m})
			}
		}
	}
	cells, err := parallel.Map(cfg.Workers, grid, func(_ int, k FigS2Key) (traffic.Result, error) {
		r, err := traffic.Run(figS2Cell(cfg.Quality, k))
		if err != nil {
			return r, fmt.Errorf("%s: %w", figS2ID(k), err)
		}
		if r.AuditViolations != 0 {
			return r, fmt.Errorf("%s: %d audit violations without an attacker",
				figS2ID(k), r.AuditViolations)
		}
		return r, nil
	})
	if err != nil {
		return res, err
	}
	for i, k := range grid {
		res.Matrix[k] = cells[i]
	}
	return res, nil
}

// Cells emits the matrix in grid order. The digests ride along as exact
// 32-bit halves so the golden pins the application byte stream and the
// mapping history, not just the averaged metrics.
func (r FigS2Result) Cells() []Cell {
	var out []Cell
	for _, conns := range r.Conns {
		for _, path := range r.Paths {
			for _, m := range r.Modes {
				c := r.Matrix[FigS2Key{Conns: conns, Path: path, Mode: m}]
				out = append(out, C("figS2",
					fmt.Sprintf("conns=%d/%s/%s", conns, path, m),
					map[string]float64{
						"gbps":             c.Gbps,
						"cycles_per_pkt":   c.CyclesPerPkt,
						"packets":          float64(c.DataPackets),
						"opens":            float64(c.Opens),
						"closes":           float64(c.Closes),
						"map_events":       float64(c.MapEvents),
						"app_digest_hi":    float64(uint32(c.AppDigest >> 32)),
						"app_digest_lo":    float64(uint32(c.AppDigest)),
						"map_digest_hi":    float64(uint32(c.MapDigest >> 32)),
						"map_digest_lo":    float64(uint32(c.MapDigest)),
						"audit_checked":    float64(c.AuditChecked),
						"audit_violations": float64(c.AuditViolations),
						"max_alloc_visits": float64(c.MaxAllocVisits),
						"carved_pages":     float64(c.CarvedPages),
					}))
			}
		}
	}
	return out
}

// Render prints one Gbps table per path (modes x connections) plus the
// collapse summary at the top of the sweep.
func (r FigS2Result) Render() string {
	var b strings.Builder
	for _, path := range r.Paths {
		header := []string{"mode"}
		for _, conns := range r.Conns {
			header = append(header, fmt.Sprintf("%dK conns", conns/1000))
		}
		header = append(header, "collapse")
		t := stats.NewTable(
			fmt.Sprintf("Figure S2 (%s path, %s). Gbps vs concurrent connections",
				path, device.ProfileMLX.Name),
			header...)
		t.AlignLeft(0)
		for _, m := range r.Modes {
			row := []string{m.String()}
			var first, last float64
			for i, conns := range r.Conns {
				c := r.Matrix[FigS2Key{Conns: conns, Path: path, Mode: m}]
				if i == 0 {
					first = c.Gbps
				}
				last = c.Gbps
				row = append(row, fmt.Sprintf("%.2f", c.Gbps))
			}
			row = append(row, stats.Ratio(first, last)+"x")
			t.RowStrings(row)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}

	maxConns := r.Conns[len(r.Conns)-1]
	strict := r.Matrix[FigS2Key{Conns: maxConns, Path: "kernel", Mode: sim.Strict}]
	riommu := r.Matrix[FigS2Key{Conns: maxConns, Path: "kernel", Mode: sim.RIOMMU}]
	bypass := r.Matrix[FigS2Key{Conns: maxConns, Path: "bypass", Mode: sim.Strict}]
	fmt.Fprintf(&b, "At %dK connections (~%d pkt/flow): strict kernel %.2f Gbps (C=%.0f), "+
		"rIOMMU kernel %.2f Gbps (%sx), strict bypass %.2f Gbps (%sx).\n",
		maxConns/1000, (1<<20)/maxConns,
		strict.Gbps, strict.CyclesPerPkt,
		riommu.Gbps, stats.Ratio(riommu.Gbps, strict.Gbps),
		bypass.Gbps, stats.Ratio(bypass.Gbps, strict.Gbps))
	return b.String()
}
