package experiments

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/parallel"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// PathologyResult isolates the §3.2 finding that motivated the authors'
// companion FAST'15 allocator: the Linux IOVA allocator "regularly causes
// some allocations to be linear in the number of currently allocated
// IOVAs". We sweep the live-set size (the Rx ring provisioning) and measure
// the strict-mode allocation cost and the worst single gap-search walk,
// plus the constant-time allocator for contrast.
type PathologyResult struct {
	LiveSets []uint32
	// AvgAllocCycles[live] is the mean strict-mode IOVA allocation cost.
	AvgAllocCycles map[uint32]float64
	// MaxWalkNodes[live] is the longest single rb-prev gap-search walk.
	MaxWalkNodes map[uint32]uint64
	// ConstAllocCycles is the "+" allocator's (flat) cost for reference.
	ConstAllocCycles float64
}

// RunPathology sweeps the live-IOVA population; the sweep points plus the
// constant-time reference run are one cell grid.
func RunPathology(cfg Config) (PathologyResult, error) {
	res := PathologyResult{
		LiveSets:       []uint32{1024, 2048, 4096, 8192},
		AvgAllocCycles: map[uint32]float64{},
		MaxWalkNodes:   map[uint32]uint64{},
	}
	opts := workload.StreamOpts{
		Messages:       cfg.Quality.scale(80, 250),
		WarmupMessages: cfg.Quality.scale(40, 100),
	}
	// Cell i < len(LiveSets) is one strict-mode sweep point; the final cell
	// is the constant-time "+" allocator reference (live set irrelevant).
	cells := make([]workload.Result, len(res.LiveSets)+1)
	err := parallel.Run(cfg.Workers, len(cells), func(i int) error {
		profile := device.ProfileMLX
		mode := sim.Strict
		if i == len(res.LiveSets) {
			mode = sim.StrictPlus
		} else {
			profile.RxEntries = res.LiveSets[i]
		}
		r, err := workload.NetperfStream(mode, profile, opts)
		cells[i] = r
		return err
	})
	if err != nil {
		return res, err
	}
	for i, live := range res.LiveSets {
		res.AvgAllocCycles[live] = cells[i].Breakdown.Average(cycles.MapIOVAAlloc)
		res.MaxWalkNodes[live] = cells[i].MaxAllocVisits
	}
	res.ConstAllocCycles = cells[len(res.LiveSets)].Breakdown.Average(cycles.MapIOVAAlloc)
	return res, nil
}

// Cells emits the sweep points and the constant-time reference.
func (r PathologyResult) Cells() []Cell {
	var out []Cell
	for _, live := range r.LiveSets {
		out = append(out, C("pathology", fmt.Sprintf("live=%d", live), map[string]float64{
			"avg_alloc_cycles": r.AvgAllocCycles[live],
			"max_walk_nodes":   float64(r.MaxWalkNodes[live]),
		}))
	}
	out = append(out, C("pathology", "const-allocator", map[string]float64{
		"avg_alloc_cycles": r.ConstAllocCycles,
	}))
	return out
}

// Render prints the sweep.
func (r PathologyResult) Render() string {
	t := stats.NewTable(
		"Sec 3.2. Linux IOVA allocator pathology: allocation cost vs live IOVAs (strict, mlx stream)",
		"live IOVAs (Rx ring)", "avg alloc cycles", "worst walk (nodes)")
	for _, live := range r.LiveSets {
		t.Row(fmt.Sprintf("%d", live), r.AvgAllocCycles[live], fmt.Sprintf("%d", r.MaxWalkNodes[live]))
	}
	out := t.String()
	out += fmt.Sprintf("constant-time '+' allocator: %.0f cycles regardless of live set (paper: 92)\n", r.ConstAllocCycles)
	return out
}

func init() {
	register(Experiment{
		ID:    "pathology",
		Title: "Sec 3.2: IOVA allocator pathology vs live-set size",
		Paper: "some allocations are linear in the number of currently allocated IOVAs; the '+' allocator is constant-time",
		Run:   wrap(RunPathology),
	})
}
