package experiments

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// PathologyResult isolates the §3.2 finding that motivated the authors'
// companion FAST'15 allocator: the Linux IOVA allocator "regularly causes
// some allocations to be linear in the number of currently allocated
// IOVAs". We sweep the live-set size (the Rx ring provisioning) and measure
// the strict-mode allocation cost and the worst single gap-search walk,
// plus the constant-time allocator for contrast.
type PathologyResult struct {
	LiveSets []uint32
	// AvgAllocCycles[live] is the mean strict-mode IOVA allocation cost.
	AvgAllocCycles map[uint32]float64
	// MaxWalkNodes[live] is the longest single rb-prev gap-search walk.
	MaxWalkNodes map[uint32]uint64
	// ConstAllocCycles is the "+" allocator's (flat) cost for reference.
	ConstAllocCycles float64
}

// RunPathology sweeps the live-IOVA population.
func RunPathology(q Quality) (PathologyResult, error) {
	res := PathologyResult{
		LiveSets:       []uint32{1024, 2048, 4096, 8192},
		AvgAllocCycles: map[uint32]float64{},
		MaxWalkNodes:   map[uint32]uint64{},
	}
	opts := workload.StreamOpts{
		Messages:       q.scale(80, 250),
		WarmupMessages: q.scale(40, 100),
	}
	for _, live := range res.LiveSets {
		profile := device.ProfileMLX
		profile.RxEntries = live
		r, err := workload.NetperfStream(sim.Strict, profile, opts)
		if err != nil {
			return res, err
		}
		res.AvgAllocCycles[live] = r.Breakdown.Average(cycles.MapIOVAAlloc)
		res.MaxWalkNodes[live] = r.MaxAllocVisits
	}
	// The constant-time allocator for contrast (live set is irrelevant).
	profile := device.ProfileMLX
	r, err := workload.NetperfStream(sim.StrictPlus, profile, opts)
	if err != nil {
		return res, err
	}
	res.ConstAllocCycles = r.Breakdown.Average(cycles.MapIOVAAlloc)
	return res, nil
}

// Render prints the sweep.
func (r PathologyResult) Render() string {
	t := stats.NewTable(
		"Sec 3.2. Linux IOVA allocator pathology: allocation cost vs live IOVAs (strict, mlx stream)",
		"live IOVAs (Rx ring)", "avg alloc cycles", "worst walk (nodes)")
	for _, live := range r.LiveSets {
		t.Row(fmt.Sprintf("%d", live), r.AvgAllocCycles[live], fmt.Sprintf("%d", r.MaxWalkNodes[live]))
	}
	out := t.String()
	out += fmt.Sprintf("constant-time '+' allocator: %.0f cycles regardless of live set (paper: 92)\n", r.ConstAllocCycles)
	return out
}

func init() {
	register(Experiment{
		ID:    "pathology",
		Title: "Sec 3.2: IOVA allocator pathology vs live-set size",
		Paper: "some allocations are linear in the number of currently allocated IOVAs; the '+' allocator is constant-time",
		Run: func(q Quality) (string, error) {
			r, err := RunPathology(q)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	})
}
