package experiments

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"riommu/internal/sim"
)

// TestFigS2Crossover runs the quick sweep and pins the acceptance
// property: at the high-churn end, strict-mode kernel throughput collapses
// while rIOMMU and the bypass path sustain at least 3x its goodput.
func TestFigS2Crossover(t *testing.T) {
	res, err := RunFigS2(Serial(Quick))
	if err != nil {
		t.Fatalf("RunFigS2: %v", err)
	}
	lo, hi := res.Conns[0], res.Conns[len(res.Conns)-1]
	strictLo := res.Matrix[FigS2Key{Conns: lo, Path: "kernel", Mode: sim.Strict}]
	strict := res.Matrix[FigS2Key{Conns: hi, Path: "kernel", Mode: sim.Strict}]
	riommu := res.Matrix[FigS2Key{Conns: hi, Path: "kernel", Mode: sim.RIOMMU}]
	bypass := res.Matrix[FigS2Key{Conns: hi, Path: "bypass", Mode: sim.Strict}]

	if riommu.Gbps < 3*strict.Gbps {
		t.Errorf("rIOMMU kernel %.2f Gbps not >= 3x strict kernel %.2f Gbps at %d conns",
			riommu.Gbps, strict.Gbps, hi)
	}
	if bypass.Gbps < 3*strict.Gbps {
		t.Errorf("strict bypass %.2f Gbps not >= 3x strict kernel %.2f Gbps at %d conns",
			bypass.Gbps, strict.Gbps, hi)
	}
	if strict.Gbps >= strictLo.Gbps {
		t.Errorf("no collapse: strict kernel %.2f Gbps at %d conns vs %.2f at %d",
			strict.Gbps, hi, strictLo.Gbps, lo)
	}
	for _, conns := range res.Conns {
		for _, path := range res.Paths {
			for _, m := range res.Modes {
				c := res.Matrix[FigS2Key{Conns: conns, Path: path, Mode: m}]
				if c.AuditViolations != 0 {
					t.Errorf("conns=%d/%s/%s: %d audit violations", conns, path, m, c.AuditViolations)
				}
			}
		}
	}

	wantCells := len(res.Conns) * len(res.Paths) * len(res.Modes)
	cells := res.Cells()
	if len(cells) != wantCells {
		t.Fatalf("Cells() emitted %d rows, want %d", len(cells), wantCells)
	}
	for _, c := range cells {
		if _, ok := c.Metrics["gbps"]; !ok {
			t.Fatalf("cell %s has no gbps metric", c.ID)
		}
		hi, lo := c.Metrics["app_digest_hi"], c.Metrics["app_digest_lo"]
		if hi == 0 && lo == 0 {
			t.Errorf("cell %s has a zero application digest", c.ID)
		}
	}
	out := res.Render()
	for _, want := range []string{"Figure S2", "kernel path", "bypass path", "collapse"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() output missing %q", want)
		}
	}
}

// TestFigS2GoldenCrossover pins the same property against the committed
// golden, so a refresh that quietly loses the collapse cannot land: the
// figS2 rows in BENCH_golden.json must themselves show the >=3x margins.
func TestFigS2GoldenCrossover(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_golden.json")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var report struct {
		Experiments []struct {
			ID    string `json:"id"`
			Cells []struct {
				ID      string             `json:"cell"`
				Metrics map[string]float64 `json:"metrics"`
			} `json:"cells"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	gbps := map[string]float64{}
	for _, e := range report.Experiments {
		if e.ID != "figS2" {
			continue
		}
		for _, c := range e.Cells {
			gbps[c.ID] = c.Metrics["gbps"]
		}
	}
	if len(gbps) == 0 {
		t.Fatalf("golden has no figS2 cells; refresh with: make bench-json")
	}
	hi := figS2Conns(Quick)[len(figS2Conns(Quick))-1]
	id := func(path string, m sim.Mode) string {
		return figS2ID(FigS2Key{Conns: hi, Path: path, Mode: m})
	}
	strict, ok := gbps[id("kernel", sim.Strict)]
	if !ok {
		t.Fatalf("golden missing cell %q", id("kernel", sim.Strict))
	}
	if r := gbps[id("kernel", sim.RIOMMU)]; r < 3*strict {
		t.Errorf("golden: rIOMMU kernel %.2f not >= 3x strict kernel %.2f", r, strict)
	}
	if bp := gbps[id("bypass", sim.Strict)]; bp < 3*strict {
		t.Errorf("golden: strict bypass %.2f not >= 3x strict kernel %.2f", bp, strict)
	}
}
