package experiments

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/parallel"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// Figure7Result holds C — the CPU cycles to process one packet — per mode,
// stacked into the paper's four components: IOVA (de)allocation, page table
// updates, IOTLB invalidations, and everything else.
type Figure7Result struct {
	Modes []sim.Mode
	// Per-mode per-packet cycles by stack component.
	IOVA, PageTable, Inv, Other map[sim.Mode]float64
	Total                       map[sim.Mode]float64
	CNone                       float64
}

// Figure7PaperCNone is the paper's C_none anchor (bottom grid line).
const Figure7PaperCNone = 1816.0

// RunFigure7 measures per-packet cycles per mode under mlx Netperf stream.
// Each mode is one grid cell with its own simulation world.
func RunFigure7(cfg Config) (Figure7Result, error) {
	res := Figure7Result{
		Modes:     sim.AllModes(),
		IOVA:      map[sim.Mode]float64{},
		PageTable: map[sim.Mode]float64{},
		Inv:       map[sim.Mode]float64{},
		Other:     map[sim.Mode]float64{},
		Total:     map[sim.Mode]float64{},
	}
	opts := workload.StreamOpts{
		Messages:       cfg.Quality.scale(120, 400),
		WarmupMessages: cfg.Quality.scale(60, 150),
	}
	cells, err := parallel.Map(cfg.Workers, res.Modes, func(_ int, m sim.Mode) (workload.Result, error) {
		return workload.NetperfStream(m, device.ProfileMLX, opts)
	})
	if err != nil {
		return res, err
	}
	for i, m := range res.Modes {
		r := cells[i]
		b := r.Breakdown
		pkts := float64(r.Units)
		res.IOVA[m] = float64(b.Total(cycles.MapIOVAAlloc)+b.Total(cycles.UnmapIOVAFind)+b.Total(cycles.UnmapIOVAFree)) / pkts
		res.PageTable[m] = float64(b.Total(cycles.MapPageTable)+b.Total(cycles.UnmapPageTable)) / pkts
		res.Inv[m] = float64(b.Total(cycles.UnmapIOTLBInv)) / pkts
		res.Other[m] = float64(b.Total(cycles.Stack)+b.Total(cycles.MapOther)+b.Total(cycles.UnmapOther)+b.Total(cycles.App)) / pkts
		res.Total[m] = r.CyclesPerUnit
	}
	res.CNone = res.Total[sim.None]
	return res, nil
}

// Cells emits the per-mode stacked components.
func (r Figure7Result) Cells() []Cell {
	out := make([]Cell, 0, len(r.Modes))
	for _, m := range r.Modes {
		out = append(out, C("figure7", m.String(), map[string]float64{
			"iova_dealloc": r.IOVA[m],
			"page_table":   r.PageTable[m],
			"iotlb_inv":    r.Inv[m],
			"other":        r.Other[m],
			"total":        r.Total[m],
		}))
	}
	return out
}

// Render produces the stacked-bar data as a table plus relative labels.
func (r Figure7Result) Render() string {
	t := stats.NewTable(
		fmt.Sprintf("Figure 7. CPU cycles for processing one packet (C_none=%.0f; paper C_none=%.0f)", r.CNone, Figure7PaperCNone),
		"mode", "iova(de)alloc", "page table", "iotlb inv", "other", "total", "rel. to none")
	for _, m := range r.Modes {
		t.Row(m.String(), r.IOVA[m], r.PageTable[m], r.Inv[m], r.Other[m],
			r.Total[m], stats.Ratio(r.Total[m], r.CNone)+"x")
	}
	return t.String()
}

func init() {
	register(Experiment{
		ID:    "figure7",
		Title: "Figure 7: cycles per packet per mode, stacked by component",
		Paper: "C_none=1,816; C_strict ≈ 9.4x none; C_defer+ ≈ 3.3x none; rIOMMU brings C near C_none",
		Run:   wrap(RunFigure7),
	})
}
