package experiments

import (
	"testing"

	"riommu/internal/sim"
)

// TestIntremapShape pins the new experiment's physics: remapped completion
// interrupts deliver on every mode, are never blocked in a benign workload,
// cost visible cycles on top of the plain run, and use posted format
// exactly in the remapped modes (pass-through has no IRT to post through).
func TestIntremapShape(t *testing.T) {
	res, err := RunIntremap(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modes) != len(sim.AllModes()) {
		t.Fatalf("experiment covers %d modes, want %d", len(res.Modes), len(sim.AllModes()))
	}
	for _, m := range res.Modes {
		plain := res.Matrix[IntremapKey{Mode: m}]
		on := res.Matrix[IntremapKey{Mode: m, Remap: true}]
		if plain.Int.Delivered != 0 {
			t.Errorf("%s: plain run delivered %d interrupts", m, plain.Int.Delivered)
		}
		if on.Int.Delivered == 0 {
			t.Errorf("%s: remapped run delivered no interrupts", m)
		}
		if on.Int.Blocked() != 0 || on.Int.StaleDelivered != 0 {
			t.Errorf("%s: benign run blocked/stale interrupts: %+v", m, on.Int)
		}
		if on.MeanCyclesPerPacket <= plain.MeanCyclesPerPacket {
			t.Errorf("%s: interrupt cost invisible: remapped C=%.1f <= plain C=%.1f",
				m, on.MeanCyclesPerPacket, plain.MeanCyclesPerPacket)
		}
		if m == sim.None {
			if on.Int.PostedDeliv != 0 {
				t.Errorf("none: pass-through posted %d deliveries", on.Int.PostedDeliv)
			}
		} else if on.Int.PostedDeliv != on.Int.Delivered {
			t.Errorf("%s: %d of %d deliveries posted, want all", m, on.Int.PostedDeliv, on.Int.Delivered)
		}
	}
	if txt := res.Render(); txt == "" {
		t.Fatal("empty rendering")
	}
	if cells := res.Cells(); len(cells) != 2*len(res.Modes) {
		t.Fatalf("%d cells, want %d", len(cells), 2*len(res.Modes))
	}
}
