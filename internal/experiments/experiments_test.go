package experiments

import (
	"math"
	"strings"
	"testing"

	"riommu/internal/sim"
)

// within asserts got is within frac (e.g. 0.5 = ±50%) of want.
func within(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	if want == 0 {
		return
	}
	if math.Abs(got-want)/want > frac {
		t.Errorf("%s = %.1f, paper %.1f (outside ±%.0f%%)", name, got, want, frac*100)
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	want := []string{"ablations", "bonnie", "figS2", "figure12", "figure7", "figure8", "intremap", "methodology", "misspenalty", "nvme", "pathology", "prefetchers", "scalability", "table1", "table2", "table3"}
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
	if _, err := Lookup("table1"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown id should fail")
	}
}

func TestTable1Shape(t *testing.T) {
	r, err := RunTable1(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	// Hard anchors measured directly from hardware in the paper.
	if got := r.UnmapInv[sim.Strict]; got != 2127 {
		t.Errorf("strict iotlb inv = %.0f, want 2127", got)
	}
	if got := r.UnmapInv[sim.Defer]; got != 9 {
		t.Errorf("defer iotlb inv = %.0f, want 9", got)
	}
	// Component values within tolerance of Table 1.
	within(t, "strict iova alloc", r.MapAlloc[sim.Strict], 3986, 0.5)
	within(t, "strict+ iova alloc", r.MapAlloc[sim.StrictPlus], 92, 0.05)
	within(t, "strict page table", r.MapPT[sim.Strict], 588, 0.15)
	within(t, "strict iova find", r.UnmapFind[sim.Strict], 249, 0.30)
	within(t, "strict iova free", r.UnmapFree[sim.Strict], 159, 0.15)
	within(t, "strict unmap pt", r.UnmapPT[sim.Strict], 438, 0.15)
	within(t, "strict+ iova find", r.UnmapFind[sim.StrictPlus], 418, 0.40)
	within(t, "defer unmap other", r.UnmapOther[sim.Defer], 205, 0.25)
	// Structural relations the paper highlights.
	if r.MapAlloc[sim.Strict] <= r.MapAlloc[sim.Defer] {
		t.Error("bulk dealloc should reduce the alloc pathology (defer < strict)")
	}
	if r.UnmapFind[sim.StrictPlus] <= r.UnmapFind[sim.Strict] {
		t.Error("strict+ tree is fuller: its iova find should cost more")
	}
	if out := r.Render(); !strings.Contains(out, "iotlb inv") {
		t.Error("render missing rows")
	}
}

func TestFigure7Shape(t *testing.T) {
	r, err := RunFigure7(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if r.CNone != Figure7PaperCNone {
		t.Errorf("C_none = %.0f, want %.0f", r.CNone, Figure7PaperCNone)
	}
	// The paper's headline: C_strict ≈ 9.4x C_none, C_defer+ ≥ 3.3x.
	ratio := r.Total[sim.Strict] / r.CNone
	if ratio < 7 || ratio > 12 {
		t.Errorf("C_strict/C_none = %.1f, want ≈9.4", ratio)
	}
	if r.Total[sim.DeferPlus]/r.CNone < 2.5 {
		t.Errorf("C_defer+/C_none = %.1f, want ≥ 2.5 (paper 3.3)", r.Total[sim.DeferPlus]/r.CNone)
	}
	// Strict's invalidation bar dominates its unmap side; none has zero
	// IOMMU components.
	if r.Inv[sim.Strict] < 2000 {
		t.Errorf("strict inv component = %.0f", r.Inv[sim.Strict])
	}
	for _, comp := range []map[sim.Mode]float64{r.IOVA, r.PageTable, r.Inv} {
		if comp[sim.None] != 0 {
			t.Error("none mode has IOMMU component cycles")
		}
	}
	if !strings.Contains(r.Render(), "rel. to none") {
		t.Error("render broken")
	}
}

func TestFigure8ModelCoincides(t *testing.T) {
	r, err := RunFigure8(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curve) == 0 || len(r.Sweep) < 4 || len(r.Modes) != 7 {
		t.Fatalf("series sizes: curve=%d sweep=%d modes=%d", len(r.Curve), len(r.Sweep), len(r.Modes))
	}
	// The paper's point: the model coincides with both the busy-wait sweep
	// and the per-mode measurements (within a few percent).
	for _, p := range append(append([]Figure8Point{}, r.Sweep...), r.Modes...) {
		if p.ModelGbs == 0 {
			continue
		}
		if math.Abs(p.MeasuredGbs-p.ModelGbs)/p.ModelGbs > 0.02 {
			t.Errorf("%s: measured %.2f vs model %.2f", p.Label, p.MeasuredGbs, p.ModelGbs)
		}
	}
	// Busy-wait monotonicity: more per-packet cycles, less throughput.
	for i := 0; i+1 < len(r.Sweep); i++ {
		if r.Sweep[i].MeasuredGbs <= r.Sweep[i+1].MeasuredGbs {
			t.Error("busy-wait sweep should decrease throughput")
		}
	}
	if !strings.Contains(r.Render(), "busywait") {
		t.Error("render broken")
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := RunTable3(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	for _, nic := range []string{"mlx", "brcm"} {
		// Anchored within 15% of the paper's RTTs across all modes.
		for _, m := range r.Modes {
			within(t, nic+"/"+m.String()+" rtt", r.RTT[nic][m], Table3Paper[nic][m], 0.25)
		}
	}
	if !strings.Contains(r.Render(), "13.4") {
		t.Error("render missing paper anchors")
	}
}

func TestMissPenalty(t *testing.T) {
	r, err := RunMissPenalty(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	within(t, "miss penalty", r.MissPenaltyCycles, PaperMissPenaltyCycles, 0.1)
	if r.MissPenaltyMicros < 0.4 || r.MissPenaltyMicros > 0.6 {
		t.Errorf("miss penalty = %.2f us, paper ~0.5", r.MissPenaltyMicros)
	}
	// rIOMMU: in-order access is essentially free; random pays one DRAM
	// fetch, still well below the radix-walk penalty.
	if r.RInOrderCycles > 10 {
		t.Errorf("riommu in-order cycles/send = %.1f, want ~0", r.RInOrderCycles)
	}
	if r.RRandomCycles >= r.MissPenaltyCycles/2 {
		t.Errorf("riommu random fetch (%.0f) should be far below the baseline miss (%.0f)",
			r.RRandomCycles, r.MissPenaltyCycles)
	}
	if !strings.Contains(r.Render(), "miss penalty") {
		t.Error("render broken")
	}
}

func TestPrefetchersFindings(t *testing.T) {
	r, err := RunPrefetchers(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	big := r.Histories[len(r.Histories)-1]
	small := r.Histories[0]
	// Finding 1: baseline variants ineffective.
	for name, rate := range r.BaselineHitRates {
		if rate > 0.15 {
			t.Errorf("baseline %s hit rate = %.2f, want ~0", name, rate)
		}
	}
	// Finding 2: Markov and Recency predict most accesses only with
	// history above the ring's live set.
	for _, name := range []string{"markov", "recency"} {
		if r.HitRates[name][big] < 0.55 {
			t.Errorf("%s with big history = %.2f, want most accesses", name, r.HitRates[name][big])
		}
		if r.HitRates[name][small] > r.HitRates[name][big]/2 {
			t.Errorf("%s small-history rate %.2f should be well below big-history %.2f",
				name, r.HitRates[name][small], r.HitRates[name][big])
		}
	}
	// Finding 3: Distance remains ineffective.
	if r.HitRates["distance"][big] > 0.3 {
		t.Errorf("distance = %.2f, want ineffective", r.HitRates["distance"][big])
	}
	// Reference: the rIOTLB predicts essentially all sequential accesses
	// with 2 entries per ring.
	if r.RIOTLBHitRate < 0.95 {
		t.Errorf("rIOTLB prediction rate = %.2f, want ~1", r.RIOTLBHitRate)
	}
	if r.RIOTLBEntries != 2 {
		t.Errorf("rIOTLB entries = %d, want 2", r.RIOTLBEntries)
	}
	if !strings.Contains(r.Render(), "markov") {
		t.Error("render broken")
	}
}

func TestAblations(t *testing.T) {
	r, err := RunAblations(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	// A: invalidation amortization — burst 200 must be far cheaper than
	// burst 1, and within ~15% of the burst-32 plateau (§4's claim that
	// ~200 iterations make invalidations negligible).
	if r.BurstC[1] < r.BurstC[200]*1.5 {
		t.Errorf("burst-1 C=%.0f should far exceed burst-200 C=%.0f", r.BurstC[1], r.BurstC[200])
	}
	if r.BurstC[200] > r.BurstC[32]*1.05 {
		t.Errorf("burst 200 (%.0f) should sit on the amortization plateau (%.0f)", r.BurstC[200], r.BurstC[32])
	}
	// B: larger defer batches buy cycles (monotone decrease).
	for i := 0; i+1 < len(r.DeferBatches); i++ {
		a, b := r.DeferBatches[i], r.DeferBatches[i+1]
		if r.DeferC[a] <= r.DeferC[b] {
			t.Errorf("defer batch %d C=%.0f should exceed batch %d C=%.0f", a, r.DeferC[a], b, r.DeferC[b])
		}
	}
	// C: prefetching eliminates almost all device-side flat-table fetches.
	if r.FetchesWith*10 >= r.FetchesWithout {
		t.Errorf("prefetch on: %d fetches vs off: %d — expected >=10x reduction",
			r.FetchesWith, r.FetchesWithout)
	}
	if r.PrefetchHitRate < 0.95 {
		t.Errorf("prediction rate %.2f", r.PrefetchHitRate)
	}
	// D: N >= L never overflows; N < L overflows exactly the shortfall.
	if r.Overflows[64] != 0 || r.Overflows[128] != 0 {
		t.Error("adequately sized tables overflowed")
	}
	if r.Overflows[16] != 48 || r.Overflows[32] != 32 {
		t.Errorf("undersized overflow counts = %v", r.Overflows)
	}
	if !strings.Contains(r.Render(), "Ablation D") {
		t.Error("render broken")
	}
}

func TestMethodologyValidation(t *testing.T) {
	r, err := RunMethodology(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	// HWpt and SWpt are identical in every metric (§5.1).
	if r.StreamGbps[sim.HWpt] != r.StreamGbps[sim.SWpt] {
		t.Errorf("HWpt stream %.2f != SWpt %.2f", r.StreamGbps[sim.HWpt], r.StreamGbps[sim.SWpt])
	}
	if r.RRMicros[sim.HWpt] != r.RRMicros[sim.SWpt] {
		t.Errorf("HWpt rtt %.2f != SWpt %.2f", r.RRMicros[sim.HWpt], r.RRMicros[sim.SWpt])
	}
	// Stream trails none by ~10% (the abstraction overhead)...
	ratio := r.StreamGbps[sim.HWpt] / r.StreamGbps[sim.None]
	if ratio < 0.85 || ratio > 0.95 {
		t.Errorf("HWpt/none stream = %.2f, paper ~0.90", ratio)
	}
	// ...while RR is essentially identical to none (latencies hide it).
	if d := r.RRMicros[sim.HWpt] - r.RRMicros[sim.None]; d < 0 || d > 0.3 {
		t.Errorf("HWpt rtt exceeds none by %.2f us, want ~0", d)
	}
	// And SWpt really does walk tables.
	if r.SWptMisses == 0 {
		t.Error("SWpt produced no IOTLB misses — not exercising walks")
	}
	if !strings.Contains(r.Render(), "HWpt/none") {
		t.Error("render broken")
	}
}

func TestPathologyScalesLinearly(t *testing.T) {
	r, err := RunPathology(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	// The worst gap-search walk tracks the live-set size (§3.2: "linear in
	// the number of currently allocated IOVAs").
	for _, live := range r.LiveSets {
		walk := float64(r.MaxWalkNodes[live])
		if walk < float64(live)*0.8 {
			t.Errorf("live=%d: worst walk %d nodes — pathology should be ~linear in live set", live, r.MaxWalkNodes[live])
		}
	}
	// Average alloc cost grows monotonically with the live set.
	for i := 0; i+1 < len(r.LiveSets); i++ {
		a, b := r.LiveSets[i], r.LiveSets[i+1]
		if r.AvgAllocCycles[a] >= r.AvgAllocCycles[b] {
			t.Errorf("avg alloc (live=%d) %.0f should be below (live=%d) %.0f",
				a, r.AvgAllocCycles[a], b, r.AvgAllocCycles[b])
		}
	}
	// The "+" allocator is flat and matches the paper's 92 cycles.
	if r.ConstAllocCycles != 92 {
		t.Errorf("const alloc = %.0f cycles, want 92", r.ConstAllocCycles)
	}
	if !strings.Contains(r.Render(), "constant-time") {
		t.Error("render broken")
	}
}

func TestNVMeExtension(t *testing.T) {
	r, err := RunNVMe(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	// rIOMMU (and the unsafe modes) saturate the drive; strict cannot.
	for _, m := range []sim.Mode{sim.RIOMMU, sim.RIOMMUMinus, sim.None} {
		if r.KIOPS[m] < r.DriveKIOPS*0.99 {
			t.Errorf("%s: %.0fK IOPS, want drive-capped %.0fK", m, r.KIOPS[m], r.DriveKIOPS)
		}
	}
	if r.KIOPS[sim.Strict] >= r.DriveKIOPS*0.95 {
		t.Errorf("strict: %.0fK IOPS — should fall short of the drive cap", r.KIOPS[sim.Strict])
	}
	// Cost ordering holds for storage too.
	order := []sim.Mode{sim.Strict, sim.StrictPlus, sim.Defer, sim.DeferPlus, sim.RIOMMUMinus, sim.RIOMMU, sim.None}
	for i := 0; i+1 < len(order); i++ {
		if r.CyclesPerOp[order[i]] <= r.CyclesPerOp[order[i+1]] {
			t.Errorf("cycles/op(%s)=%.0f should exceed %s=%.0f", order[i],
				r.CyclesPerOp[order[i]], order[i+1], r.CyclesPerOp[order[i+1]])
		}
	}
	if !strings.Contains(r.Render(), "IOPS") {
		t.Error("render broken")
	}
}

func TestBonnieIndistinguishable(t *testing.T) {
	r, err := RunBonnie(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.MBps[sim.Strict] / r.MBps[sim.None]
	if ratio < 0.95 || ratio > 1.0 {
		t.Errorf("bonnie strict/none = %.3f, want ≈1", ratio)
	}
	if !strings.Contains(r.Render(), "MB/s") {
		t.Error("render broken")
	}
}
