package experiments

import (
	"fmt"

	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// BonnieResult reproduces the §4 applicability check: Bonnie++-style
// sequential I/O over a SATA/AHCI drive is indistinguishable with strict
// IOMMU protection and with the IOMMU disabled, because the drive — not the
// CPU — is the bottleneck.
type BonnieResult struct {
	Modes []sim.Mode
	MBps  map[sim.Mode]float64
	CPU   map[sim.Mode]float64
}

// RunBonnie measures sequential throughput in strict and none modes (plus
// rIOMMU for completeness, though §4 notes SATA's out-of-order 32-slot
// queue is outside rIOMMU's target class).
func RunBonnie(q Quality) (BonnieResult, error) {
	res := BonnieResult{
		Modes: []sim.Mode{sim.Strict, sim.None},
		MBps:  map[sim.Mode]float64{},
		CPU:   map[sim.Mode]float64{},
	}
	opts := workload.BonnieOpts{Ops: q.scale(200, 800)}
	for _, m := range res.Modes {
		r, err := workload.Bonnie(m, opts)
		if err != nil {
			return res, err
		}
		res.MBps[m] = r.Throughput
		res.CPU[m] = r.CPU
	}
	return res, nil
}

// Render prints the comparison.
func (r BonnieResult) Render() string {
	t := stats.NewTable(
		"Sec 4. Bonnie++ sequential I/O over SATA: strict vs no IOMMU",
		"mode", "MB/s", "cpu %")
	for _, m := range r.Modes {
		t.Row(m.String(), r.MBps[m], r.CPU[m]*100)
	}
	ratio := 0.0
	if r.MBps[sim.None] > 0 {
		ratio = r.MBps[sim.Strict] / r.MBps[sim.None]
	}
	return t.String() + fmt.Sprintf("strict/none = %.3f (paper: indistinguishable)\n", ratio)
}

func init() {
	register(Experiment{
		ID:    "bonnie",
		Title: "Sec 4: SATA applicability — Bonnie++ sequential I/O",
		Paper: "indistinguishable performance with strict IOMMU protection and with a disabled IOMMU, HDD or SSD",
		Run: func(q Quality) (string, error) {
			r, err := RunBonnie(q)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	})
}
