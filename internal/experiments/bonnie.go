package experiments

import (
	"fmt"

	"riommu/internal/parallel"
	"riommu/internal/sim"
	"riommu/internal/stats"
	"riommu/internal/workload"
)

// BonnieResult reproduces the §4 applicability check: Bonnie++-style
// sequential I/O over a SATA/AHCI drive is indistinguishable with strict
// IOMMU protection and with the IOMMU disabled, because the drive — not the
// CPU — is the bottleneck.
type BonnieResult struct {
	Modes []sim.Mode
	MBps  map[sim.Mode]float64
	CPU   map[sim.Mode]float64
}

// RunBonnie measures sequential throughput in strict and none modes (plus
// rIOMMU for completeness, though §4 notes SATA's out-of-order 32-slot
// queue is outside rIOMMU's target class).
func RunBonnie(cfg Config) (BonnieResult, error) {
	res := BonnieResult{
		Modes: []sim.Mode{sim.Strict, sim.None},
		MBps:  map[sim.Mode]float64{},
		CPU:   map[sim.Mode]float64{},
	}
	opts := workload.BonnieOpts{Ops: cfg.Quality.scale(200, 800)}
	cells, err := parallel.Map(cfg.Workers, res.Modes, func(_ int, m sim.Mode) (workload.Result, error) {
		return workload.Bonnie(m, opts)
	})
	if err != nil {
		return res, err
	}
	for i, m := range res.Modes {
		res.MBps[m] = cells[i].Throughput
		res.CPU[m] = cells[i].CPU
	}
	return res, nil
}

// Cells emits the per-mode throughput points.
func (r BonnieResult) Cells() []Cell {
	out := make([]Cell, 0, len(r.Modes))
	for _, m := range r.Modes {
		out = append(out, C("bonnie", m.String(), map[string]float64{
			"mbps": r.MBps[m],
			"cpu":  r.CPU[m],
		}))
	}
	return out
}

// Render prints the comparison.
func (r BonnieResult) Render() string {
	t := stats.NewTable(
		"Sec 4. Bonnie++ sequential I/O over SATA: strict vs no IOMMU",
		"mode", "MB/s", "cpu %")
	for _, m := range r.Modes {
		t.Row(m.String(), r.MBps[m], r.CPU[m]*100)
	}
	ratio := 0.0
	if r.MBps[sim.None] > 0 {
		ratio = r.MBps[sim.Strict] / r.MBps[sim.None]
	}
	return t.String() + fmt.Sprintf("strict/none = %.3f (paper: indistinguishable)\n", ratio)
}

func init() {
	register(Experiment{
		ID:    "bonnie",
		Title: "Sec 4: SATA applicability — Bonnie++ sequential I/O",
		Paper: "indistinguishable performance with strict IOMMU protection and with a disabled IOMMU, HDD or SSD",
		Run:   wrap(RunBonnie),
	})
}
