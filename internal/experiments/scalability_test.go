package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"riommu/internal/device"
	"riommu/internal/multicore"
	"riommu/internal/sim"
)

// TestScalabilityDeterminism is the new engine's regression gate: the K-core
// scale-out grid must merge to byte-identical rendered text and JSON cells
// for any worker count (same pattern as TestSerialParallelEquivalence, but
// pinned to the multicore engine so a scheduler or lock-model change that
// breaks determinism fails here by name).
func TestScalabilityDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker sweep is slow under -short")
	}
	type snapshot struct {
		text []byte
		json []byte
	}
	runAt := func(workers int) snapshot {
		res, err := RunScalability(Config{Quality: Quick, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		j, err := json.Marshal(res.Cells())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return snapshot{text: []byte(res.Render()), json: j}
	}
	want := runAt(1)
	if len(want.json) == 0 {
		t.Fatal("serial scalability run produced no cells")
	}
	for _, workers := range []int{2, 8} {
		got := runAt(workers)
		if !bytes.Equal(want.text, got.text) {
			t.Errorf("workers=%d: rendered text differs from serial", workers)
		}
		if !bytes.Equal(want.json, got.json) {
			t.Errorf("workers=%d: JSON cells differ from serial (%d vs %d bytes)",
				workers, len(want.json), len(got.json))
		}
	}
}

// TestScalabilityCurveShape pins the headline claim at experiment
// granularity: on the mlx profile the riommu aggregate at 8 cores beats
// strict by at least 3x, and no cell exceeds its line rate.
func TestScalabilityCurveShape(t *testing.T) {
	res, err := RunScalability(Serial(Quick))
	if err != nil {
		t.Fatal(err)
	}
	strict := res.Matrix[ScaleKey{NIC: "mlx", Mode: sim.Strict, Cores: 8}]
	riommu := res.Matrix[ScaleKey{NIC: "mlx", Mode: sim.RIOMMU, Cores: 8}]
	if riommu.AggGbps < 3*strict.AggGbps {
		t.Errorf("mlx 8 cores: riommu %.2f Gbps < 3x strict %.2f Gbps", riommu.AggGbps, strict.AggGbps)
	}
	for k, c := range res.Matrix {
		line := device.ProfileMLX.LineRateGbps
		if k.NIC == device.ProfileBRCM.Name {
			line = device.ProfileBRCM.LineRateGbps
		}
		if c.AggGbps > line+1e-9 {
			t.Errorf("%s/%s/cores=%d: %.3f Gbps exceeds line rate %g", k.NIC, k.Mode, k.Cores, c.AggGbps, line)
		}
		if multicore.ContendedMode(k.Mode) != (c.Lock.Acquisitions > 0) {
			t.Errorf("%s/%s/cores=%d: lock acquisitions %d inconsistent with mode class",
				k.NIC, k.Mode, k.Cores, c.Lock.Acquisitions)
		}
	}
}
