package workload

import (
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/sim"
)

func TestCalibrationBreakdown(t *testing.T) {
	for _, m := range []sim.Mode{sim.Strict, sim.StrictPlus, sim.Defer, sim.DeferPlus} {
		r, err := NetperfStream(m, device.ProfileMLX, StreamOpts{Messages: 150, WarmupMessages: 80})
		if err != nil {
			t.Fatal(err)
		}
		b := r.Breakdown
		t.Logf("%-8s mapAlloc=%.0f mapPT=%.0f mapOther=%.0f | find=%.0f free=%.0f unPT=%.0f inv=%.0f unOther=%.0f | mapsum=%.0f unmapsum=%.0f",
			m,
			b.Average(cycles.MapIOVAAlloc), b.Average(cycles.MapPageTable), b.Average(cycles.MapOther),
			b.Average(cycles.UnmapIOVAFind), b.Average(cycles.UnmapIOVAFree), b.Average(cycles.UnmapPageTable),
			b.Average(cycles.UnmapIOTLBInv), b.Average(cycles.UnmapOther),
			b.Average(cycles.MapIOVAAlloc)+b.Average(cycles.MapPageTable)+b.Average(cycles.MapOther),
			b.Average(cycles.UnmapIOVAFind)+b.Average(cycles.UnmapIOVAFree)+b.Average(cycles.UnmapPageTable)+b.Average(cycles.UnmapIOTLBInv)+b.Average(cycles.UnmapOther))
	}
}
