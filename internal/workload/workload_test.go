package workload

import (
	"testing"

	"riommu/internal/device"
	"riommu/internal/sim"
)

// quick options so the full matrix stays fast under `go test`.
var (
	quickStream = StreamOpts{Messages: 120, WarmupMessages: 60}
	quickRR     = RROpts{Transactions: 400, Warmup: 100}
	quickApache = ApacheOpts{FileBytes: 1024, Requests: 120, Warmup: 40}
	quickMem    = MemcachedOpts{Operations: 600, Warmup: 150}
)

func streamAll(t *testing.T, p device.NICProfile) map[sim.Mode]Result {
	t.Helper()
	out := map[sim.Mode]Result{}
	for _, m := range sim.AllModes() {
		r, err := NetperfStream(m, p, quickStream)
		if err != nil {
			t.Fatalf("stream %s/%s: %v", p.Name, m, err)
		}
		out[m] = r
		t.Log(r.String())
	}
	return out
}

func TestStreamMLXShape(t *testing.T) {
	rs := streamAll(t, device.ProfileMLX)

	// Headline claims (§1, §5.2) — shape, not third digits:
	// riommu improves on strict by several-fold (paper: 7.56×).
	if ratio := rs[sim.RIOMMU].Throughput / rs[sim.Strict].Throughput; ratio < 3.5 {
		t.Errorf("riommu/strict throughput = %.2fx, want >= 3.5x (paper 7.56x)", ratio)
	}
	// riommu is within 0.6–1.0× of the unprotected optimum (paper 0.77×).
	if ratio := rs[sim.RIOMMU].Throughput / rs[sim.None].Throughput; ratio < 0.6 || ratio > 1.0 {
		t.Errorf("riommu/none throughput = %.2fx, want in [0.6,1.0] (paper 0.77x)", ratio)
	}
	// riommu− pays the flush tax but still beats every baseline mode.
	if rs[sim.RIOMMUMinus].Throughput <= rs[sim.DeferPlus].Throughput {
		t.Errorf("riommu- (%.2f) should beat defer+ (%.2f)",
			rs[sim.RIOMMUMinus].Throughput, rs[sim.DeferPlus].Throughput)
	}
	// Strict is several times slower than none (paper: ~10×).
	if ratio := rs[sim.None].Throughput / rs[sim.Strict].Throughput; ratio < 4 {
		t.Errorf("none/strict = %.2fx, want >= 4x (paper ~10x)", ratio)
	}
	// Ordering of C across modes. strict+ and defer are within ~10% of each
	// other in the paper (9,404 vs 8,592 cycles) and our reproduction keeps
	// them adjacent but can rank them either way, so they are compared as a
	// group.
	if c := rs[sim.Strict].CyclesPerUnit; c <= rs[sim.StrictPlus].CyclesPerUnit || c <= rs[sim.Defer].CyclesPerUnit {
		t.Errorf("C(strict)=%.0f should top both strict+ and defer", c)
	}
	for _, m := range []sim.Mode{sim.StrictPlus, sim.Defer} {
		if rs[m].CyclesPerUnit <= rs[sim.DeferPlus].CyclesPerUnit {
			t.Errorf("C(%s)=%.0f should exceed C(defer+)=%.0f", m,
				rs[m].CyclesPerUnit, rs[sim.DeferPlus].CyclesPerUnit)
		}
	}
	tail := []sim.Mode{sim.DeferPlus, sim.RIOMMUMinus, sim.RIOMMU, sim.None}
	for i := 0; i+1 < len(tail); i++ {
		if rs[tail[i]].CyclesPerUnit <= rs[tail[i+1]].CyclesPerUnit {
			t.Errorf("C(%s)=%.0f should exceed C(%s)=%.0f", tail[i],
				rs[tail[i]].CyclesPerUnit, tail[i+1], rs[tail[i+1]].CyclesPerUnit)
		}
	}
	// mlx stream is CPU-bound in every mode (Figure 12 top: CPU at 100%).
	for m, r := range rs {
		if r.CPU < 0.99 {
			t.Errorf("%s: CPU = %.2f, want saturated", m, r.CPU)
		}
	}
}

func TestStreamBRCMShape(t *testing.T) {
	rs := streamAll(t, device.ProfileBRCM)
	// Figure 12 bottom-left: every mode except strict saturates the 10 GbE
	// line.
	for _, m := range []sim.Mode{sim.StrictPlus, sim.Defer, sim.DeferPlus, sim.RIOMMUMinus, sim.RIOMMU, sim.None} {
		if rs[m].Throughput < 9.99 {
			t.Errorf("%s: %.2f Gbps, want line rate 10", m, rs[m].Throughput)
		}
	}
	if rs[sim.Strict].Throughput > 9 {
		t.Errorf("strict: %.2f Gbps, should NOT saturate (paper ~4.6)", rs[sim.Strict].Throughput)
	}
	// At saturation the metric is CPU (Table 2): riommu uses less CPU than
	// the deferred and strict+ modes, and a bit more than none.
	if rs[sim.RIOMMU].CPU >= rs[sim.DeferPlus].CPU {
		t.Errorf("riommu CPU %.2f should be below defer+ %.2f", rs[sim.RIOMMU].CPU, rs[sim.DeferPlus].CPU)
	}
	if rs[sim.RIOMMU].CPU <= rs[sim.None].CPU {
		t.Errorf("riommu CPU %.2f should exceed none %.2f", rs[sim.RIOMMU].CPU, rs[sim.None].CPU)
	}
	if rs[sim.Strict].CPU < 0.99 {
		t.Errorf("strict CPU %.2f should be saturated", rs[sim.Strict].CPU)
	}
}

func TestRRShape(t *testing.T) {
	for _, p := range []device.NICProfile{device.ProfileMLX, device.ProfileBRCM} {
		rs := map[sim.Mode]Result{}
		for _, m := range sim.AllModes() {
			r, err := NetperfRR(m, p, quickRR)
			if err != nil {
				t.Fatalf("rr %s/%s: %v", p.Name, m, err)
			}
			rs[m] = r
			t.Log(r.String())
		}
		// Latency ordering (Table 3): strict > strict+ > ... > none, with 3%
		// slack for the adjacent modes the paper itself separates by only a
		// few hundred nanoseconds.
		order := []sim.Mode{sim.Strict, sim.StrictPlus, sim.Defer, sim.DeferPlus, sim.RIOMMUMinus, sim.RIOMMU, sim.None}
		for i := 0; i+1 < len(order); i++ {
			if rs[order[i]].LatencyMicros < rs[order[i+1]].LatencyMicros*0.97 {
				t.Errorf("%s: rtt(%s)=%.2f should be >= rtt(%s)=%.2f", p.Name,
					order[i], rs[order[i]].LatencyMicros, order[i+1], rs[order[i+1]].LatencyMicros)
			}
		}
		// Strict must clearly be the slowest and none the fastest.
		if rs[sim.Strict].LatencyMicros <= rs[sim.DeferPlus].LatencyMicros {
			t.Errorf("%s: rtt(strict) should top rtt(defer+)", p.Name)
		}
		// The improvement is modest (paper: 1.02–1.25×), nothing like the
		// stream speedups: RTT is dominated by non-IOMMU latency.
		ratio := rs[sim.RIOMMU].Throughput / rs[sim.Strict].Throughput
		if ratio < 1.02 || ratio > 2.0 {
			t.Errorf("%s rr riommu/strict = %.2fx, want modest (paper 1.21-1.25x)", p.Name, ratio)
		}
		// CPU is far from saturated (paper: 12-30%).
		if cpu := rs[sim.None].CPU; cpu > 0.5 {
			t.Errorf("%s rr none CPU = %.2f, want low", p.Name, cpu)
		}
	}
}

func TestApacheShape(t *testing.T) {
	// Apache 1KB is computation-bound: ~12K req/s in none mode on both
	// NICs (§5.2), with a visible strict penalty.
	for _, p := range []device.NICProfile{device.ProfileMLX, device.ProfileBRCM} {
		rs := map[sim.Mode]Result{}
		for _, m := range []sim.Mode{sim.Strict, sim.RIOMMU, sim.None} {
			r, err := Apache(m, p, quickApache)
			if err != nil {
				t.Fatalf("apache %s/%s: %v", p.Name, m, err)
			}
			rs[m] = r
			t.Log(r.String())
		}
		none := rs[sim.None].Throughput
		if none < 8_000 || none > 16_000 {
			t.Errorf("%s apache-1K none = %.0f req/s, want ≈12K", p.Name, none)
		}
		if ratio := rs[sim.RIOMMU].Throughput / rs[sim.Strict].Throughput; ratio < 1.1 {
			t.Errorf("%s apache-1K riommu/strict = %.2f, want > 1.1 (paper 1.29-2.32)", p.Name, ratio)
		}
		if ratio := rs[sim.RIOMMU].Throughput / none; ratio < 0.85 || ratio > 1.0 {
			t.Errorf("%s apache-1K riommu/none = %.2f, want ≈0.9", p.Name, ratio)
		}
	}
}

func TestApache1MShape(t *testing.T) {
	// Apache 1MB behaves like stream: throughput-sensitive (mlx) or
	// line-rate-saturated except strict (brcm).
	rM := map[sim.Mode]Result{}
	for _, m := range []sim.Mode{sim.Strict, sim.RIOMMU, sim.None} {
		r, err := Apache(m, device.ProfileMLX, ApacheOpts{FileBytes: 1 << 20, Requests: 8, Warmup: 2})
		if err != nil {
			t.Fatal(err)
		}
		rM[m] = r
		t.Log(r.String())
	}
	if ratio := rM[sim.RIOMMU].Throughput / rM[sim.Strict].Throughput; ratio < 2.5 {
		t.Errorf("mlx apache-1M riommu/strict = %.2f, want large (paper 5.8)", ratio)
	}
}

func TestMemcachedShape(t *testing.T) {
	rs := map[sim.Mode]Result{}
	for _, m := range []sim.Mode{sim.Strict, sim.DeferPlus, sim.RIOMMU, sim.None} {
		r, err := Memcached(m, device.ProfileMLX, quickMem)
		if err != nil {
			t.Fatal(err)
		}
		rs[m] = r
		t.Log(r.String())
	}
	// Order of magnitude above Apache 1KB (§5.2).
	if rs[sim.None].Throughput < 60_000 {
		t.Errorf("memcached none = %.0f ops/s, want ~10x apache", rs[sim.None].Throughput)
	}
	if ratio := rs[sim.RIOMMU].Throughput / rs[sim.Strict].Throughput; ratio < 1.5 {
		t.Errorf("memcached riommu/strict = %.2f, want large (paper 4.88)", ratio)
	}
	if ratio := rs[sim.RIOMMU].Throughput / rs[sim.None].Throughput; ratio < 0.7 || ratio > 1.0 {
		t.Errorf("memcached riommu/none = %.2f (paper 0.83)", ratio)
	}
}

func TestBonnieIndistinguishable(t *testing.T) {
	// §4: Bonnie++ sequential I/O shows indistinguishable performance with
	// strict IOMMU protection vs no IOMMU.
	strict, err := Bonnie(sim.Strict, BonnieOpts{})
	if err != nil {
		t.Fatal(err)
	}
	none, err := Bonnie(sim.None, BonnieOpts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(strict.String())
	t.Log(none.String())
	ratio := strict.Throughput / none.Throughput
	if ratio < 0.95 || ratio > 1.0 {
		t.Errorf("bonnie strict/none = %.3f, want ≈1 (indistinguishable)", ratio)
	}
}
