package workload

import (
	"math/rand"

	"riommu/internal/detrand"

	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/mem"
	"riommu/internal/pci"
	"riommu/internal/sim"
)

// BonnieOpts configures the Bonnie++-style sequential I/O run over the
// AHCI/SATA model (§4 Applicability): the paper found strict IOMMU
// protection indistinguishable from no IOMMU on SATA drives, HDD or SSD,
// because the drive — not the CPU — is the bottleneck.
type BonnieOpts struct {
	Ops       int
	ChunkKB   int
	Sequental bool
}

func (o *BonnieOpts) defaults() {
	if o.Ops == 0 {
		o.Ops = 400
	}
	if o.ChunkKB == 0 {
		o.ChunkKB = 8
	}
}

// SATABDF is the PCI identity of the simulated drive.
var SATABDF = pci.NewBDF(0, 5, 0)

// Bonnie measures sequential block I/O throughput in MB/s. Per-op time is
// the drive's service latency plus the CPU's (un)mapping work; the result
// shows the IOMMU's share is negligible at disk speeds.
func Bonnie(mode sim.Mode, opts BonnieOpts) (Result, error) {
	opts.defaults()
	sys, err := sim.NewSystem(mode, MemPages)
	if err != nil {
		return Result{}, err
	}
	defer sys.Close()
	prot, err := sys.ProtectionFor(SATABDF, []uint32{4, 256, 256})
	if err != nil {
		return Result{}, err
	}
	disk := device.NewSATA(SATABDF, sys.Eng, 4096, 1<<16)
	chunk := uint32(opts.ChunkKB * 1024)
	frames := int((chunk + mem.PageSize - 1) / mem.PageSize)

	buf, err := sys.Mem.AllocFrames(frames)
	if err != nil {
		return Result{}, err
	}
	rng := newSeqRand()

	op := func(block uint64) error {
		iova, err := prot.Map(driver.RingRx, buf.PA(), chunk, pci.DirBidi)
		if err != nil {
			return err
		}
		if _, err := disk.Issue(device.SATACommand{BufIOVA: iova, Block: block, Length: chunk, Op: device.SATAWrite}); err != nil {
			return err
		}
		if _, err := disk.CompleteAll(rng); err != nil {
			return err
		}
		// A SATA queue of depth one per op: each unmap ends its own burst.
		return prot.Unmap(driver.RingRx, iova, chunk, true)
	}

	// Warmup.
	for i := 0; i < 32; i++ {
		if err := op(uint64(i % 64)); err != nil {
			return Result{}, err
		}
	}
	sys.ResetClocks()
	for i := 0; i < opts.Ops; i++ {
		if err := op(uint64(i % 4096)); err != nil {
			return Result{}, err
		}
	}

	cpuPerOp := float64(sys.CPU.Now()) / float64(opts.Ops)
	opCycles := cpuPerOp + float64(disk.SeqLatencyCycles)
	opsPerSec := sys.Model.CyclesPerSecond() / opCycles
	mbps := opsPerSec * float64(chunk) / 1e6
	return Result{
		Benchmark:     "bonnie",
		NIC:           "sata",
		Mode:          mode,
		Throughput:    mbps,
		Unit:          "MB/s",
		CPU:           cpuPerOp / opCycles,
		CyclesPerUnit: cpuPerOp,
		Breakdown:     sys.CPU.Snapshot(),
		Units:         uint64(opts.Ops),
	}, nil
}

// newSeqRand returns the deterministic source used for AHCI completion
// order; sequential Bonnie issues at depth 1, so the order is trivially
// FIFO regardless of the seed.
func newSeqRand() *rand.Rand { return detrand.New(1) }
