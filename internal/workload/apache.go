package workload

import (
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/netstack"
	"riommu/internal/perfmodel"
	"riommu/internal/sim"
)

// ApacheOpts configures an Apache/ApacheBench run (§5.1): ApacheBench
// issues 32 concurrent requests for a static file of a given size over
// fresh TCP connections.
type ApacheOpts struct {
	FileBytes int // 1 KB or 1 MB in the paper
	Requests  int
	Warmup    int
}

func (o *ApacheOpts) defaults() {
	if o.FileBytes == 0 {
		o.FileBytes = 1024
	}
	if o.Requests == 0 {
		o.Requests = 300
		if o.FileBytes >= 1<<20 {
			o.Requests = 8 // 1 MB requests are ~700 packets each
		}
	}
	if o.Warmup == 0 {
		o.Warmup = o.Requests / 4
	}
}

// apacheAppCycles is the per-request HTTP processing cost: connection
// accept, parsing, logging, file lookup, syscalls. Calibrated so that the
// none-mode 1 KB rate lands near the paper's ~12K requests/second (§5.2
// observes both NICs deliver ≈12K req/s because this computation, not the
// network, is the bottleneck).
const apacheAppCycles = 215_000

// apacheCtrlFrames is the per-request connection-handling traffic
// (SYN, ACK, FIN exchanges plus the GET itself) — small frames received and
// sent around the response data.
const (
	apacheCtrlRx = 3 // SYN, GET, FIN-ACK
	apacheCtrlTx = 2 // SYN-ACK, FIN
)

// Apache measures the server side of ApacheBench: requests/second for a
// static file of the configured size.
func Apache(mode sim.Mode, profile device.NICProfile, opts ApacheOpts) (Result, error) {
	opts.defaults()
	sys, fx, err := newSystemWithNIC(mode, profile)
	if err != nil {
		return Result{}, err
	}
	defer sys.Close()
	params := netstack.DefaultParams(profile)
	// 32 concurrent connections: completion work is still burst-coalesced,
	// though less deeply than a single saturating stream.
	params.TxBurst = 64
	conn := netstack.NewConn(sys.CPU, fx.drv, params)
	ctrl := make([]byte, 80)

	request := func() error {
		sys.CPU.Charge(cycles.App, apacheAppCycles)
		for i := 0; i < apacheCtrlRx; i++ {
			if _, err := conn.Receive(ctrl); err != nil {
				return err
			}
		}
		for i := 0; i < apacheCtrlTx; i++ {
			if err := conn.SendMessage(len(ctrl)); err != nil {
				return err
			}
		}
		// Response: headers + file body.
		return conn.SendMessage(300 + opts.FileBytes)
	}

	for i := 0; i < opts.Warmup; i++ {
		if err := request(); err != nil {
			return Result{}, err
		}
	}
	if err := conn.Flush(); err != nil {
		return Result{}, err
	}
	sys.ResetClocks()
	for i := 0; i < opts.Requests; i++ {
		if err := request(); err != nil {
			return Result{}, err
		}
	}
	if err := conn.Flush(); err != nil {
		return Result{}, err
	}

	cPerReq := float64(sys.CPU.Now()) / float64(opts.Requests)
	// Line-rate cap in requests/second for the response bytes.
	bytesPerReq := float64(opts.FileBytes + 300 + (apacheCtrlRx+apacheCtrlTx)*len(ctrl))
	lineReqs := profile.LineRateGbps * 1e9 / 8 / bytesPerReq
	rate := perfmodel.RatePerSecond(sys.Model, cPerReq, lineReqs)
	res := Result{
		Benchmark:     benchName("apache", opts.FileBytes),
		NIC:           profile.Name,
		Mode:          mode,
		Throughput:    rate,
		Unit:          "req/s",
		CPU:           perfmodel.CPUUtil(sys.Model, cPerReq, rate),
		CyclesPerUnit: cPerReq,
		Breakdown:     sys.CPU.Snapshot(),
		Units:         uint64(opts.Requests),
	}
	if err := fx.drv.Teardown(); err != nil {
		return Result{}, err
	}
	return res, nil
}

func benchName(base string, fileBytes int) string {
	if fileBytes >= 1<<20 {
		return base + "-1M"
	}
	return base + "-1K"
}
