// Package workload implements the paper's benchmarks (§5.1) over the
// simulated systems: Netperf TCP stream, Netperf UDP request-response,
// Apache/ApacheBench with 1 KB and 1 MB files, Memcached/Memslap, and
// Bonnie++ over a SATA disk. Each workload drives the full stack — netstack
// costs, driver map/unmap, rings, translation hardware, device DMA — and
// converts the resulting cycles-per-unit into throughput, CPU utilization
// and latency through the validated performance model (§3.3).
package workload

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/pci"
	"riommu/internal/sim"
)

// NICBDF is the PCI identity the workloads give their NIC.
var NICBDF = pci.NewBDF(0, 3, 0)

// MemPages is the simulated physical memory size used by the workloads.
const MemPages = 1 << 15 // 128 MiB

// Result is one benchmark measurement in one mode.
type Result struct {
	Benchmark string
	NIC       string
	Mode      sim.Mode

	// Throughput in Unit-dependent terms: Gbps for stream, transactions/s
	// for RR, requests/s for Apache, operations/s for Memcached, MB/s for
	// Bonnie.
	Throughput float64
	Unit       string

	// CPU is core utilization in [0,1].
	CPU float64

	// CyclesPerUnit is C: CPU cycles per packet (stream) or per
	// transaction/request/operation.
	CyclesPerUnit float64

	// LatencyMicros is the round-trip time (RR only).
	LatencyMicros float64

	// Breakdown holds the per-component cycle accounting for the measured
	// interval (Figure 7's stacked bars).
	Breakdown cycles.Snapshot
	// Units is the number of packets/transactions measured.
	Units uint64

	// MaxAllocVisits is the longest single IOVA-allocator gap-search walk
	// observed (Linux allocator modes only; 0 otherwise). Exposes the
	// §3.2 pathology for the pathology experiment.
	MaxAllocVisits uint64
}

// String renders a one-line summary.
func (r Result) String() string {
	s := fmt.Sprintf("%-10s %-5s %-8s %10.2f %s  cpu=%3.0f%%  C=%.0f",
		r.Benchmark, r.NIC, r.Mode, r.Throughput, r.Unit, r.CPU*100, r.CyclesPerUnit)
	if r.LatencyMicros > 0 {
		s += fmt.Sprintf("  rtt=%.1fus", r.LatencyMicros)
	}
	return s
}

// newSystemWithNIC builds the system + NIC + netstack fixture shared by the
// networking workloads.
func newSystemWithNIC(mode sim.Mode, profile device.NICProfile) (*sim.System, *nicFixture, error) {
	sys, err := sim.NewSystemScaled(mode, MemPages, profile.CostScale)
	if err != nil {
		return nil, nil, err
	}
	drv, nic, err := sys.AttachNIC(profile, NICBDF)
	if err != nil {
		return nil, nil, err
	}
	return sys, &nicFixture{drv: drv, nic: nic}, nil
}

type nicFixture struct {
	drv *driver.NICDriver
	nic *device.NIC
}
