package workload

import (
	"riommu/internal/baseline"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/iova"
	"riommu/internal/netstack"
	"riommu/internal/perfmodel"
	"riommu/internal/sim"
)

// StreamOpts configures a Netperf TCP stream run.
type StreamOpts struct {
	// Messages is the number of 16 KB messages to measure (Netperf's
	// default message size, §5.1).
	Messages int
	// WarmupMessages run before the clocks reset, letting the IOVA
	// allocator and caches reach steady state.
	WarmupMessages int
	// MessageBytes overrides the 16 KB default.
	MessageBytes int
	// ExtraCyclesPerPacket adds an artificial busy-wait to every packet,
	// used by the Figure 8 model-validation sweep (§3.3).
	ExtraCyclesPerPacket uint64

	// Ablation knobs (zero values mean defaults).
	TxBurst         int  // completion burst length (default ~200)
	DeferBatch      int  // deferred-invalidation batch (default 250)
	DisablePrefetch bool // turn off the rIOTLB next-entry prefetch
}

func (o *StreamOpts) defaults() {
	if o.Messages == 0 {
		o.Messages = 400
	}
	if o.WarmupMessages == 0 {
		o.WarmupMessages = 120
	}
	if o.MessageBytes == 0 {
		o.MessageBytes = 16 * 1024
	}
}

// NetperfStream runs the TCP stream benchmark: it maximizes data sent over
// one connection and reports throughput (Gbps), CPU utilization, and C, the
// cycles per packet (the quantity Figures 7, 8 and 12 are built from).
func NetperfStream(mode sim.Mode, profile device.NICProfile, opts StreamOpts) (Result, error) {
	opts.defaults()
	sys, fx, err := newSystemWithNIC(mode, profile)
	if err != nil {
		return Result{}, err
	}
	defer sys.Close()
	params := netstack.DefaultParams(profile)
	params.StackCyclesPerPacket += opts.ExtraCyclesPerPacket
	if opts.TxBurst > 0 {
		params.TxBurst = opts.TxBurst
	}
	if opts.DeferBatch > 0 {
		if bd, ok := sys.Protections[NICBDF].(*baseline.Driver); ok {
			bd.SetDeferBatch(opts.DeferBatch)
		}
	}
	if opts.DisablePrefetch && sys.RHW != nil {
		sys.RHW.DisablePrefetch = true
	}
	conn := netstack.NewConn(sys.CPU, fx.drv, params)

	for i := 0; i < opts.WarmupMessages; i++ {
		if err := conn.SendMessage(opts.MessageBytes); err != nil {
			return Result{}, err
		}
	}
	if err := conn.Flush(); err != nil {
		return Result{}, err
	}
	sys.ResetClocks()
	startPkts := conn.DataPackets

	for i := 0; i < opts.Messages; i++ {
		if err := conn.SendMessage(opts.MessageBytes); err != nil {
			return Result{}, err
		}
	}
	if err := conn.Flush(); err != nil {
		return Result{}, err
	}

	pkts := conn.DataPackets - startPkts
	c := float64(sys.CPU.Now()) / float64(pkts)
	rate := perfmodel.PacketsPerSecond(sys.Model, c, profile.LineRateGbps)
	var maxWalk uint64
	if bd, ok := sys.Protections[NICBDF].(*baseline.Driver); ok {
		if la, ok := bd.Allocator().(*iova.LinuxAllocator); ok {
			maxWalk = la.MaxAllocVisits
		}
	}
	res := Result{
		Benchmark:      "stream",
		NIC:            profile.Name,
		Mode:           mode,
		Throughput:     rate * perfmodel.WireBytes * 8 / 1e9,
		Unit:           "Gbps",
		CPU:            perfmodel.CPUUtil(sys.Model, c, rate),
		CyclesPerUnit:  c,
		Breakdown:      sys.CPU.Snapshot(),
		Units:          pkts,
		MaxAllocVisits: maxWalk,
	}
	if err := fx.drv.Teardown(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// NetperfStreamBusyWait runs the stream benchmark with an artificial
// busy-wait added to every packet — the §3.3 technique for validating that
// throughput is Gbps(C) regardless of where the cycles go.
func NetperfStreamBusyWait(mode sim.Mode, profile device.NICProfile, opts StreamOpts, extraCycles uint64) (Result, error) {
	opts.ExtraCyclesPerPacket = extraCycles
	return NetperfStream(mode, profile, opts)
}

// RROpts configures a Netperf UDP request-response run.
type RROpts struct {
	Transactions int
	Warmup       int
}

func (o *RROpts) defaults() {
	if o.Transactions == 0 {
		o.Transactions = 2000
	}
	if o.Warmup == 0 {
		o.Warmup = 200
	}
}

// rrBase holds the per-NIC latency calibration: the wire + peer + interrupt
// latency that is not the measured machine's CPU (calibrated so none-mode
// RTTs match Table 3: mlx 13.4 µs, brcm 34.6 µs) and the per-transaction
// protocol cost (calibrated from the RR CPU utilizations of Figure 12:
// ~28-30% on mlx, ~12-15% on brcm).
type rrBase struct {
	baseCycles  float64
	stackPerTxn uint64
}

func rrCalibration(p device.NICProfile) rrBase {
	if p.Name == "brcm" {
		// RTT_none = 34.6 µs = 106,260 cycles; CPU ≈ 13%.
		return rrBase{baseCycles: 79500, stackPerTxn: 13300}
	}
	// mlx: RTT_none = 13.4 µs = 41,540 cycles; CPU ≈ 29%.
	return rrBase{baseCycles: 17500, stackPerTxn: 12000}
}

// NetperfRR runs the UDP request-response benchmark: one-byte ping-pong,
// one transaction in flight. Since both machines of the paper's setup run
// the same mode, the round trip pays the per-transaction CPU cost twice.
// Latency sensitivity means completion bursts have length 1 — no
// invalidation amortization (§4).
func NetperfRR(mode sim.Mode, profile device.NICProfile, opts RROpts) (Result, error) {
	opts.defaults()
	sys, fx, err := newSystemWithNIC(mode, profile)
	if err != nil {
		return Result{}, err
	}
	defer sys.Close()
	cal := rrCalibration(profile)
	request := make([]byte, 64) // 1-byte payload in a minimum frame

	txn := func() error {
		sys.CPU.Charge(cycles.Stack, cal.stackPerTxn)
		// Receive the request.
		if err := fx.drv.Deliver(request); err != nil {
			return err
		}
		if _, err := fx.drv.ReapRx(); err != nil {
			return err
		}
		// Send the one-byte response through the NIC's inline path (tiny
		// payloads ride inside the descriptor — ConnectX inline sends /
		// copybreak — so the transmit side needs no mapping); the burst is
		// a single packet.
		if err := fx.drv.SendInline([]byte{0x42}); err != nil {
			return err
		}
		if _, err := fx.drv.PumpTx(1); err != nil {
			return err
		}
		if _, err := fx.drv.ReapTx(); err != nil {
			return err
		}
		return nil
	}

	for i := 0; i < opts.Warmup; i++ {
		if err := txn(); err != nil {
			return Result{}, err
		}
	}
	sys.ResetClocks()
	for i := 0; i < opts.Transactions; i++ {
		if err := txn(); err != nil {
			return Result{}, err
		}
	}

	perTxn := float64(sys.CPU.Now()) / float64(opts.Transactions)
	rttCycles := cal.baseCycles + 2*perTxn
	rttMicros := sys.Model.Micros(uint64(rttCycles))
	res := Result{
		Benchmark:     "rr",
		NIC:           profile.Name,
		Mode:          mode,
		Throughput:    1e6 / rttMicros,
		Unit:          "txn/s",
		CPU:           perTxn / rttCycles,
		CyclesPerUnit: perTxn,
		LatencyMicros: rttMicros,
		Breakdown:     sys.CPU.Snapshot(),
		Units:         uint64(opts.Transactions),
	}
	if err := fx.drv.Teardown(); err != nil {
		return Result{}, err
	}
	return res, nil
}
