package workload

import (
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/netstack"
	"riommu/internal/perfmodel"
	"riommu/internal/sim"
)

// MemcachedOpts configures a Memslap-style run (§5.1): 90% get / 10% set,
// 64-byte keys, 1 KB values, 32 concurrent requests.
type MemcachedOpts struct {
	Operations int
	Warmup     int
	GetPercent int
}

func (o *MemcachedOpts) defaults() {
	if o.Operations == 0 {
		o.Operations = 2000
	}
	if o.Warmup == 0 {
		o.Warmup = 300
	}
	if o.GetPercent == 0 {
		o.GetPercent = 90
	}
}

// memcachedAppCycles is the per-operation server cost: protocol parse and
// an in-memory LRU hash operation. An order of magnitude lighter than
// Apache's per-request processing, which is why Memcached reaches ~10× the
// Apache 1KB rate (§5.2).
const memcachedAppCycles = 17_000

const (
	memKeyBytes   = 64
	memValueBytes = 1024
)

// Memcached measures the server side of Memslap: operations/second.
func Memcached(mode sim.Mode, profile device.NICProfile, opts MemcachedOpts) (Result, error) {
	opts.defaults()
	sys, fx, err := newSystemWithNIC(mode, profile)
	if err != nil {
		return Result{}, err
	}
	defer sys.Close()
	params := netstack.DefaultParams(profile)
	params.TxBurst = 64 // 32 concurrent clients coalesce completions
	conn := netstack.NewConn(sys.CPU, fx.drv, params)

	op := func(i int) error {
		sys.CPU.Charge(cycles.App, memcachedAppCycles)
		isGet := i%10 < opts.GetPercent/10
		if isGet {
			// get: key arrives, value goes out.
			if _, err := conn.Receive(make([]byte, memKeyBytes)); err != nil {
				return err
			}
			return conn.SendMessage(memValueBytes)
		}
		// set: key+value arrive, short ack goes out.
		if _, err := conn.Receive(make([]byte, memKeyBytes+memValueBytes)); err != nil {
			return err
		}
		return conn.SendMessage(16)
	}

	for i := 0; i < opts.Warmup; i++ {
		if err := op(i); err != nil {
			return Result{}, err
		}
	}
	if err := conn.Flush(); err != nil {
		return Result{}, err
	}
	sys.ResetClocks()
	for i := 0; i < opts.Operations; i++ {
		if err := op(i); err != nil {
			return Result{}, err
		}
	}
	if err := conn.Flush(); err != nil {
		return Result{}, err
	}

	cPerOp := float64(sys.CPU.Now()) / float64(opts.Operations)
	bytesPerOp := float64(memKeyBytes + memValueBytes)
	lineOps := profile.LineRateGbps * 1e9 / 8 / bytesPerOp
	rate := perfmodel.RatePerSecond(sys.Model, cPerOp, lineOps)
	res := Result{
		Benchmark:     "memcached",
		NIC:           profile.Name,
		Mode:          mode,
		Throughput:    rate,
		Unit:          "ops/s",
		CPU:           perfmodel.CPUUtil(sys.Model, cPerOp, rate),
		CyclesPerUnit: cPerOp,
		Breakdown:     sys.CPU.Snapshot(),
		Units:         uint64(opts.Operations),
	}
	if err := fx.drv.Teardown(); err != nil {
		return Result{}, err
	}
	return res, nil
}
