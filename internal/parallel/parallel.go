// Package parallel is the deterministic worker-pool engine behind the
// experiment grid. Every Figure/Table cell, ablation point and
// fault-campaign sweep point is an independent simulation world (its own
// PhysMem, clocks and seeded fault engine), so the grid is embarrassingly
// parallel — the only thing that must NOT depend on scheduling is the
// output. The engine guarantees that by construction:
//
//   - Work is handed out by an atomic cursor, but every cell writes its
//     result into a slot preallocated at the cell's grid index, so the
//     merged result order equals the grid order regardless of which worker
//     ran which cell.
//   - All cells run even when some fail, and the reported error is the one
//     from the lowest-index failing cell. (Cancelling on first error would
//     make the *set of executed cells* — and therefore the surviving
//     error — a function of scheduling.)
//   - Per-cell randomness is derived with CellSeed, a pure function of the
//     base seed and the cell's identity, never of worker identity or
//     execution order.
//
// Together these make the parallel output byte-identical to the serial
// (workers == 1) path for a fixed seed, which is what lets CI diff
// experiment output exactly.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInterrupted marks a cell that was never started because the run was
// interrupted (e.g. by SIGINT). Cells that were already in flight when the
// interrupt arrived run to completion, so every result slot holds either a
// real outcome or ErrInterrupted — never a half-finished cell.
var ErrInterrupted = errors.New("parallel: run interrupted")

// interrupted is the process-wide cooperative cancellation flag checked by
// Run before handing out each cell.
var interrupted atomic.Bool

// Interrupt requests that all in-progress and future Run calls stop handing
// out new cells. Safe to call from a signal-handling goroutine.
func Interrupt() { interrupted.Store(true) }

// Interrupted reports whether Interrupt has been called since the last
// ResetInterrupt.
func Interrupted() bool { return interrupted.Load() }

// ResetInterrupt clears the interrupt flag. Call it at the start of a
// command's run function so earlier interrupts don't leak into a new run.
func ResetInterrupt() { interrupted.Store(false) }

// Workers resolves a -parallel flag value: n >= 1 is taken literally,
// anything else (the flag default 0) means one worker per CPU.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.NumCPU()
}

// Run executes fn(i) for every i in [0, n) on at most workers concurrent
// goroutines. workers <= 1 is the legacy serial path: every cell runs
// in index order on the calling goroutine. In both paths every cell is
// executed (failures do not cancel the rest) and the returned error is the
// lowest-index cell's error, so the outcome is independent of scheduling.
//
// If Interrupt is called mid-run, cells not yet started get ErrInterrupted
// instead of executing; cells already running finish normally.
func Run(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := range errs {
			if interrupted.Load() {
				errs[i] = ErrInterrupted
				continue
			}
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if interrupted.Load() {
						errs[i] = ErrInterrupted
						continue
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over every element of in using Run and returns the results
// in input order. On error the returned slice still holds the results of
// every cell that succeeded (failed cells keep the zero value).
func Map[T, R any](workers int, in []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(in))
	err := Run(workers, len(in), func(i int) error {
		r, err := fn(i, in[i])
		out[i] = r
		return err
	})
	return out, err
}

// CellSeed derives the RNG seed for one grid cell from the campaign's base
// seed and the cell's identity string. It is a pure function — FNV-1a over
// the id folded into the base seed, finalized with splitmix64 — so a cell's
// randomness depends only on what the cell *is*, never on which worker ran
// it or when. Distinct cells get statistically independent streams.
func CellSeed(base uint64, id string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime
	}
	// splitmix64 finalizer over the combined state.
	z := base + h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ParseShard parses a -shard flag value "i/K" into (index, count): process
// i of K cooperating processes, each computing every K-th grid cell. The
// empty string means unsharded (0, 0). Like the worker count, the shard
// split is pure scheduling — it must never change what any cell computes.
func ParseShard(s string) (index, count int, err error) {
	if strings.TrimSpace(s) == "" {
		return 0, 0, nil
	}
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad shard %q (want i/K, e.g. 0/4)", s)
	}
	index, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("bad shard index in %q: %w", s, err)
	}
	count, err = strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("bad shard count in %q: %w", s, err)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("shard %q out of range (want 0 <= i < K)", s)
	}
	return index, count, nil
}
