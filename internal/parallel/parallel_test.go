package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderedMerge(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 50
		out := make([]int, n)
		err := Run(workers, n, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if err := Run(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	ran := 0
	if err := Run(4, 1, func(i int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
}

// TestRunLowestIndexError: every cell runs even when some fail, and the
// reported error is deterministically the lowest-index one.
func TestRunLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var ran atomic.Int64
		errAt := func(i int) error { return fmt.Errorf("cell %d failed", i) }
		err := Run(workers, 20, func(i int) error {
			ran.Add(1)
			if i == 7 || i == 3 || i == 19 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 3 failed" {
			t.Errorf("workers=%d: err = %v, want cell 3's", workers, err)
		}
		if ran.Load() != 20 {
			t.Errorf("workers=%d: ran %d cells, want all 20", workers, ran.Load())
		}
	}
}

func TestMapOrderAndPartialResults(t *testing.T) {
	in := []string{"a", "bb", "ccc", "dddd"}
	out, err := Map(8, in, func(i int, s string) (int, error) {
		if i == 2 {
			return 0, errors.New("boom")
		}
		return len(s), nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	want := []int{1, 2, 0, 4} // failed cell keeps the zero value
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

// TestRunIsConcurrent proves workers > 1 really runs cells concurrently:
// two cells rendezvous with each other, which can only succeed if both are
// in flight at once.
func TestRunIsConcurrent(t *testing.T) {
	ch := make(chan int)
	err := Run(2, 2, func(i int) error {
		select {
		case ch <- i:
		case <-ch:
		case <-time.After(5 * time.Second):
			return fmt.Errorf("cell %d: no rendezvous — cells are not concurrent", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(8); got != 8 {
		t.Errorf("Workers(8) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	for _, n := range []int{0, -3} {
		if got := Workers(n); got != runtime.NumCPU() {
			t.Errorf("Workers(%d) = %d, want NumCPU=%d", n, got, runtime.NumCPU())
		}
	}
}

// TestCellSeed pins the derivation: stable across runs, sensitive to both
// the base seed and the cell id, and never colliding across a small grid.
func TestCellSeed(t *testing.T) {
	if a, b := CellSeed(42, "nic/strict/r=0.01"), CellSeed(42, "nic/strict/r=0.01"); a != b {
		t.Error("CellSeed not a pure function")
	}
	if CellSeed(42, "a") == CellSeed(43, "a") {
		t.Error("base seed ignored")
	}
	if CellSeed(42, "a") == CellSeed(42, "b") {
		t.Error("cell id ignored")
	}
	seen := map[uint64]string{}
	for mode := 0; mode < 4; mode++ {
		for rate := 0; rate < 8; rate++ {
			id := fmt.Sprintf("nic/mode%d/r=%d", mode, rate)
			s := CellSeed(1, id)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %q and %q", prev, id)
			}
			seen[s] = id
		}
	}
}

// TestInterrupt: once Interrupt fires, unstarted cells resolve to
// ErrInterrupted in both the serial and the worker-pool path, and
// ResetInterrupt restores normal operation.
func TestInterrupt(t *testing.T) {
	defer ResetInterrupt()
	for _, workers := range []int{1, 4} {
		ResetInterrupt()
		var ran atomic.Int64
		trigger := 5
		err := Run(workers, 40, func(i int) error {
			if int(ran.Add(1)) == trigger {
				Interrupt()
			}
			return nil
		})
		if !errors.Is(err, ErrInterrupted) {
			t.Errorf("workers=%d: want ErrInterrupted, got %v", workers, err)
		}
		if !Interrupted() {
			t.Errorf("workers=%d: Interrupted() false after Interrupt", workers)
		}
		// In-flight cells finish; unstarted ones never run. With 4 workers at
		// most trigger+workers-1 cells can have started before the flag landed.
		if got := ran.Load(); got < int64(trigger) || got >= 40 {
			t.Errorf("workers=%d: %d cells ran, want >=%d and <40", workers, got, trigger)
		}
	}

	ResetInterrupt()
	if Interrupted() {
		t.Error("ResetInterrupt did not clear the flag")
	}
	if err := Run(2, 10, func(i int) error { return nil }); err != nil {
		t.Errorf("run after reset failed: %v", err)
	}
}
