package ring

import (
	"testing"
	"testing/quick"

	"riommu/internal/mem"
)

func newRing(t *testing.T, size uint32) (*Ring, *mem.PhysMem) {
	t.Helper()
	mm := mustMem(t, 64*mem.PageSize)
	r, err := New(mm, size)
	if err != nil {
		t.Fatal(err)
	}
	return r, mm
}

func TestNewValidation(t *testing.T) {
	mm := mustMem(t, 16*mem.PageSize)
	if _, err := New(mm, 1); err == nil {
		t.Error("size-1 ring should be rejected")
	}
	r, err := New(mm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 8 || r.Bytes() != 8*DescBytes {
		t.Errorf("Size=%d Bytes=%d", r.Size(), r.Bytes())
	}
	if err := r.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPageRing(t *testing.T) {
	mm := mustMem(t, 64*mem.PageSize)
	before := mm.FreeFrames()
	r, err := New(mm, 1024) // 16 KiB => 4 frames
	if err != nil {
		t.Fatal(err)
	}
	// Slot 300 lives on the second page and must round-trip.
	want := Descriptor{Addr: 0xabcd, Len: 1500, Flags: FlagReady}
	if err := r.WriteSlot(300, want); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadSlot(300)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("slot 300 = %+v, want %+v", got, want)
	}
	if err := r.Free(); err != nil {
		t.Fatal(err)
	}
	if mm.FreeFrames() != before {
		t.Error("ring leaked frames")
	}
}

func TestPostConsumeReap(t *testing.T) {
	r, _ := newRing(t, 4)
	slot, err := r.Post(Descriptor{Addr: 0x1000, Len: 64})
	if err != nil {
		t.Fatal(err)
	}
	if slot != 0 || r.Pending() != 1 {
		t.Errorf("slot=%d pending=%d", slot, r.Pending())
	}
	// Device consumes: read, mark done, advance.
	d, err := r.ReadSlot(slot)
	if err != nil {
		t.Fatal(err)
	}
	if d.Flags&FlagReady == 0 {
		t.Error("posted descriptor not marked ready")
	}
	d.Flags |= FlagDone
	if err := r.WriteSlot(slot, d); err != nil {
		t.Fatal(err)
	}
	if err := r.AdvanceHead(); err != nil {
		t.Fatal(err)
	}
	// Driver reaps.
	got, err := r.Reap(slot)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != 0x1000 || got.Len != 64 {
		t.Errorf("reaped %+v", got)
	}
	// Reaping again fails: status was cleared.
	if _, err := r.Reap(slot); err == nil {
		t.Error("double reap should fail")
	}
}

func TestFullAndEmpty(t *testing.T) {
	r, _ := newRing(t, 4)
	if !r.Empty() || r.Full() {
		t.Error("fresh ring state wrong")
	}
	// Capacity is size-1.
	for i := 0; i < 3; i++ {
		if _, err := r.Post(Descriptor{Addr: uint64(i)}); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	if !r.Full() {
		t.Error("ring should be full after size-1 posts")
	}
	if _, err := r.Post(Descriptor{}); err == nil {
		t.Error("post to full ring should fail")
	}
	if err := r.AdvanceHead(); err != nil {
		t.Fatal(err)
	}
	if r.Full() {
		t.Error("ring still full after a consume")
	}
	if _, err := r.Post(Descriptor{}); err != nil {
		t.Errorf("post after drain: %v", err)
	}
}

func TestAdvanceEmptyFails(t *testing.T) {
	r, _ := newRing(t, 4)
	if err := r.AdvanceHead(); err == nil {
		t.Error("advancing empty ring should fail")
	}
}

func TestDeviceAddressing(t *testing.T) {
	r, _ := newRing(t, 8)
	r.SetDeviceAddr(0x40000)
	if r.DeviceAddr() != 0x40000 {
		t.Error("DeviceAddr")
	}
	if r.DeviceSlotAddr(3) != 0x40000+3*DescBytes {
		t.Error("DeviceSlotAddr")
	}
	if r.DeviceSlotAddr(9) != 0x40000+1*DescBytes {
		t.Error("DeviceSlotAddr must wrap")
	}
}

func TestEncodeDecodeWords(t *testing.T) {
	prop := func(addr uint64, ln, flags uint32) bool {
		w0, w1 := EncodeWords(Descriptor{Addr: addr, Len: ln, Flags: flags})
		return DecodeWords(w0, w1) == Descriptor{Addr: addr, Len: ln, Flags: flags}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: FIFO order is preserved across arbitrary post/consume
// interleavings, including wraparound.
func TestFIFOProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		mm := mustMem(t, 16*mem.PageSize)
		r, err := New(mm, 8)
		if err != nil {
			return false
		}
		nextPost, nextConsume := uint64(0), uint64(0)
		for _, post := range ops {
			if post {
				if r.Full() {
					continue
				}
				if _, err := r.Post(Descriptor{Addr: nextPost}); err != nil {
					return false
				}
				nextPost++
			} else {
				if r.Empty() {
					continue
				}
				d, err := r.ReadSlot(r.Head())
				if err != nil || d.Addr != nextConsume {
					return false // out of order!
				}
				if err := r.AdvanceHead(); err != nil {
					return false
				}
				nextConsume++
			}
		}
		return r.Pending() == uint32(nextPost-nextConsume)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
