// Package ring implements the circular DMA descriptor rings through which
// drivers and high-bandwidth devices exchange work (§2.3): an array of
// descriptors in (simulated) physical memory, shared between the OS driver —
// which adds descriptors at the tail — and the device — which consumes them
// from the head in order. Descriptor addresses are IOVAs when an IOMMU is
// enabled, so the device's descriptor fetches and target-buffer accesses are
// both translated.
package ring

import (
	"encoding/binary"
	"fmt"

	"riommu/internal/mem"
)

// Descriptor is one DMA descriptor. The exact format varies between real
// devices; ours carries the minimum the paper describes: the target buffer's
// address (an IOVA) and size, plus status bits used for synchronization.
type Descriptor struct {
	Addr  uint64 // target buffer IOVA
	Len   uint32 // target buffer length in bytes
	Flags uint32 // status bits
}

// Descriptor status bits.
const (
	// FlagReady marks a descriptor posted by the driver and owned by the
	// device.
	FlagReady uint32 = 1 << 0
	// FlagDone marks a descriptor completed by the device and returned to
	// the driver.
	FlagDone uint32 = 1 << 1
	// FlagError marks a completion that failed (e.g. a DMA fault).
	FlagError uint32 = 1 << 2
	// FlagInline marks a descriptor whose payload is carried inside the
	// descriptor itself (in the Addr field) rather than in a mapped target
	// buffer — the inline-send path NICs provide for tiny packets. Inline
	// descriptors require no IOVA and always describe a whole packet.
	FlagInline uint32 = 1 << 3
)

// DescBytes is the in-memory size of one descriptor.
const DescBytes = 16

// Ring is the driver-side view of one descriptor ring. head is advanced by
// the device model as it consumes descriptors; tail by the driver as it
// posts them. The ring is full when it holds Size-1 pending descriptors
// (one slot is kept open to distinguish full from empty, as in real NICs).
type Ring struct {
	mm     *mem.PhysMem
	basePA mem.PA
	frames mem.PFN
	nfr    int
	size   uint32
	mask   uint32 // size-1 when size is a power of two, else 0
	buf    []byte // direct view of the descriptor array (mem.Span)

	head uint32 // next descriptor the device will consume
	tail uint32 // next slot the driver will fill

	deviceAddr uint64 // ring base as the device addresses it (IOVA)
}

// New allocates a ring of size descriptors in simulated memory.
func New(mm *mem.PhysMem, size uint32) (*Ring, error) {
	if size < 2 {
		return nil, fmt.Errorf("ring: size %d too small (need >= 2)", size)
	}
	bytes := uint64(size) * DescBytes
	nfr := int((bytes + mem.PageSize - 1) / mem.PageSize)
	f, err := mm.AllocFrames(nfr)
	if err != nil {
		return nil, fmt.Errorf("ring: allocating descriptor array: %w", err)
	}
	buf, err := mm.Span(f.PA(), bytes)
	if err != nil {
		return nil, fmt.Errorf("ring: mapping descriptor array: %w", err)
	}
	r := &Ring{mm: mm, basePA: f.PA(), frames: f, nfr: nfr, size: size, buf: buf}
	if size&(size-1) == 0 {
		r.mask = size - 1 // real NIC ring sizes: index with a mask, not a division
	}
	return r, nil
}

// idx reduces a cursor or slot number modulo the ring size.
func (r *Ring) idx(i uint32) uint32 {
	if r.mask != 0 {
		return i & r.mask
	}
	return i % r.size
}

// Free releases the descriptor array.
func (r *Ring) Free() error {
	for i := 0; i < r.nfr; i++ {
		if err := r.mm.FreeFrame(r.frames + mem.PFN(i)); err != nil {
			return err
		}
	}
	return nil
}

// Size returns the number of descriptor slots.
func (r *Ring) Size() uint32 { return r.size }

// Reset clears the ring to its initial state: cursors at zero and all
// descriptor memory zeroed. Used when the OS reinitializes a device after
// an I/O page fault (§4).
func (r *Ring) Reset() error {
	r.head, r.tail = 0, 0
	return r.mm.Fill(r.basePA, uint64(r.size)*DescBytes, 0)
}

// BasePA returns the physical base of the descriptor array.
func (r *Ring) BasePA() mem.PA { return r.basePA }

// Bytes returns the size of the descriptor array in bytes.
func (r *Ring) Bytes() uint32 { return r.size * DescBytes }

// SetDeviceAddr records the address (IOVA) at which the device sees the
// ring; configured during device initialization after the ring's pages are
// mapped for the device.
func (r *Ring) SetDeviceAddr(iova uint64) { r.deviceAddr = iova }

// DeviceAddr returns the device-visible base address of the ring.
func (r *Ring) DeviceAddr() uint64 { return r.deviceAddr }

// DeviceSlotAddr returns the device-visible address of slot i.
func (r *Ring) DeviceSlotAddr(i uint32) uint64 {
	return r.deviceAddr + uint64(r.idx(i))*DescBytes
}

// SlotPA returns the physical address of slot i.
func (r *Ring) SlotPA(i uint32) mem.PA {
	return r.basePA + mem.PA(r.idx(i)*DescBytes)
}

// Head returns the device cursor; Tail the driver cursor.
func (r *Ring) Head() uint32 { return r.head }

// Tail returns the driver cursor.
func (r *Ring) Tail() uint32 { return r.tail }

// Pending returns the number of descriptors posted but not yet consumed by
// the device.
func (r *Ring) Pending() uint32 {
	if r.mask != 0 {
		return (r.tail - r.head) & r.mask
	}
	return (r.tail + r.size - r.head) % r.size
}

// Full reports whether the ring cannot accept another descriptor.
func (r *Ring) Full() bool { return r.idx(r.tail+1) == r.head }

// Empty reports whether no descriptors are pending.
func (r *Ring) Empty() bool { return r.head == r.tail }

// encode/decode descriptor <-> memory words.
func encode(d Descriptor) (uint64, uint64) {
	return d.Addr, uint64(d.Len) | uint64(d.Flags)<<32
}

func decode(w0, w1 uint64) Descriptor {
	return Descriptor{Addr: w0, Len: uint32(w1), Flags: uint32(w1 >> 32)}
}

// WriteSlot stores a descriptor into slot i (driver-side, direct memory).
// Slots are accessed through the Span view taken at allocation: the array
// stays allocated for the ring's lifetime and i wraps modulo the size, so —
// exactly like the typed mm accessors this replaces — the store cannot fail,
// and device DMA to the same bytes stays coherent with it.
func (r *Ring) WriteSlot(i uint32, d Descriptor) error {
	s := r.buf[r.idx(i)*DescBytes:]
	w0, w1 := encode(d)
	binary.LittleEndian.PutUint64(s, w0)
	binary.LittleEndian.PutUint64(s[8:], w1)
	return nil
}

// ReadSlot loads the descriptor in slot i (driver-side, direct memory).
func (r *Ring) ReadSlot(i uint32) (Descriptor, error) {
	s := r.buf[r.idx(i)*DescBytes:]
	return decode(binary.LittleEndian.Uint64(s), binary.LittleEndian.Uint64(s[8:])), nil
}

// Post adds a descriptor at the tail and advances it. It fails when the
// ring is full (the driver must slow down, §4).
func (r *Ring) Post(d Descriptor) (slot uint32, err error) {
	if r.Full() {
		return 0, fmt.Errorf("ring: full (%d pending)", r.Pending())
	}
	slot = r.tail
	d.Flags = (d.Flags &^ FlagDone) | FlagReady
	if err := r.WriteSlot(slot, d); err != nil {
		return 0, err
	}
	r.tail = r.idx(r.tail + 1)
	return slot, nil
}

// PostN posts one descriptor per address in addrs, all with the same length
// and ready status, advancing the tail once per descriptor exactly as N
// scalar Posts would. It returns the first slot filled (the others follow
// modulo the size) and how many were posted; posting stops with an error if
// the ring fills first.
func (r *Ring) PostN(addrs []uint64, length uint32) (first uint32, n int, err error) {
	first = r.tail
	w1 := uint64(length) | uint64(FlagReady)<<32
	// One capacity check up front replaces the per-descriptor Full() test;
	// nothing consumes slots while the driver is posting, so the available
	// count is static for the whole batch.
	post := len(addrs)
	if avail := int(r.size - 1 - r.Pending()); post > avail {
		post = avail
	}
	tail := r.tail
	for _, a := range addrs[:post] {
		s := r.buf[tail*DescBytes:]
		binary.LittleEndian.PutUint64(s, a)
		binary.LittleEndian.PutUint64(s[8:], w1)
		if tail++; tail == r.size {
			tail = 0
		}
	}
	r.tail = tail
	n = post
	if post < len(addrs) {
		return first, n, fmt.Errorf("ring: full (%d pending)", r.Pending())
	}
	return first, n, nil
}

// AdvanceHead moves the device cursor past one consumed descriptor. Called
// by the device model after it finishes the DMA for the head descriptor.
func (r *Ring) AdvanceHead() error {
	if r.Empty() {
		return fmt.Errorf("ring: advancing head of empty ring")
	}
	r.head = r.idx(r.head + 1)
	return nil
}

// Reap returns the completed descriptor in slot i and clears its status so
// the slot can be reused. It fails if the descriptor is not marked done.
func (r *Ring) Reap(i uint32) (Descriptor, error) {
	d, err := r.ReadSlot(i)
	if err != nil {
		return Descriptor{}, err
	}
	if d.Flags&FlagDone == 0 {
		return Descriptor{}, fmt.Errorf("ring: slot %d not complete (flags=%#x)", i, d.Flags)
	}
	clear := d
	clear.Flags = 0
	if err := r.WriteSlot(i, clear); err != nil {
		return Descriptor{}, err
	}
	return d, nil
}

// EncodeWords exposes the descriptor encoding for device models that access
// the ring through DMA rather than directly.
func EncodeWords(d Descriptor) (uint64, uint64) { return encode(d) }

// DecodeWords is the inverse of EncodeWords.
func DecodeWords(w0, w1 uint64) Descriptor { return decode(w0, w1) }
