// Package profiling wires runtime/pprof into the command-line tools. Both
// campaign runners expose -cpuprofile/-memprofile flags; the profiles are
// flushed by the stop function the caller defers inside run(), so they are
// written even on the cooperative SIGINT path (the signal only sets the
// worker pool's cancellation flag; run() still returns normally with 130).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty). The returned
// stop function flushes the CPU profile and writes an allocs-space heap
// profile to memPath (when non-empty); it is safe to call exactly once.
// On error, Start has already cleaned up after itself.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set before snapshotting
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
