package device

// Coalescer models interrupt coalescing (§2.3: "The device coalesces
// interrupts when their rate is high"): completion events accumulate and an
// interrupt fires only when enough have gathered or the oldest has waited
// long enough. High-rate traffic therefore delivers completions to the
// driver in large bursts — the very property that lets the driver's unmap
// loop amortize the rIOTLB invalidation (§4's ~200-iteration bursts).
type Coalescer struct {
	// MaxEvents fires an interrupt once this many completions accumulate.
	MaxEvents int
	// MaxWaitCycles fires once the oldest pending completion has waited
	// this long (device-side cycles), bounding added latency.
	MaxWaitCycles uint64

	pending  int
	oldestAt uint64
	// Interrupts counts fired interrupts; Events counts completions.
	Interrupts, Events uint64
}

// NewCoalescer returns a coalescer with the given thresholds. Zero values
// disable that trigger (but at least one must be set to ever fire).
func NewCoalescer(maxEvents int, maxWaitCycles uint64) *Coalescer {
	return &Coalescer{MaxEvents: maxEvents, MaxWaitCycles: maxWaitCycles}
}

// Pending returns the completions accumulated since the last interrupt.
func (c *Coalescer) Pending() int { return c.pending }

// Event records one completion at device time `now` and reports whether an
// interrupt fires. When it fires, the pending count resets — the driver is
// expected to reap everything available.
func (c *Coalescer) Event(now uint64) bool {
	if c.pending == 0 {
		c.oldestAt = now
	}
	c.pending++
	c.Events++
	return c.maybeFire(now)
}

// Poll checks the timeout trigger without a new completion (the driver or a
// timer tick calling in at device time `now`).
func (c *Coalescer) Poll(now uint64) bool {
	if c.pending == 0 {
		return false
	}
	return c.maybeFire(now)
}

func (c *Coalescer) maybeFire(now uint64) bool {
	byCount := c.MaxEvents > 0 && c.pending >= c.MaxEvents
	byTime := c.MaxWaitCycles > 0 && now-c.oldestAt >= c.MaxWaitCycles
	if !byCount && !byTime {
		return false
	}
	c.pending = 0
	c.Interrupts++
	return true
}
