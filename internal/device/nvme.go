package device

import (
	"fmt"

	"riommu/internal/dma"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// NVMe models a PCIe SSD controller following the NVM Express queue-pair
// design the paper discusses in §4: the host posts fixed-size commands into
// a submission queue (SQ) in host memory; the device consumes them strictly
// in order, performs the data DMAs, and posts completions into a completion
// queue (CQ) — all through translated addresses. The in-order consumption is
// what makes rIOMMU applicable to NVMe devices.
//
// Command layout (32 bytes): word0 = data buffer IOVA, word1 = starting
// block, word2 packs the byte length (low 32) and opcode (high 32).
// Completion layout (16 bytes): word0 packs command id (low 32) and status
// (high 32); word1 is reserved.
const (
	NVMeCommandBytes    = 32
	NVMeCompletionBytes = 16

	// NVMe opcodes (subset).
	NVMeOpRead  = 0x02 // device writes host memory
	NVMeOpWrite = 0x01 // device reads host memory

	// NVMeFlagPRPList marks a command whose buffer field points at a PRP
	// list: an array of 8-byte IOVA entries, one per page of the transfer,
	// that the device fetches through translation before performing the
	// data DMAs. This is the scatter-gather mode of §4, where a single
	// command carries K IOVAs.
	NVMeFlagPRPList = 1 << 16

	// Completion statuses.
	NVMeStatusOK    = 0
	NVMeStatusFault = 1 // data DMA faulted
	NVMeStatusLBA   = 2 // out-of-range block
)

// NVMeQueuePair is one SQ/CQ pair allocated in simulated host memory.
type NVMeQueuePair struct {
	mm      *mem.PhysMem
	sqPA    mem.PA
	cqPA    mem.PA
	sqAddr  uint64 // device-visible SQ base (IOVA)
	cqAddr  uint64 // device-visible CQ base (IOVA)
	entries uint32
	frames  []mem.PFN

	sqHead, sqTail uint32 // device / host cursors
	cqTail         uint32 // device cursor (host reaps by polling phase)
	nextCID        uint32
}

// NewNVMeQueuePair allocates an SQ/CQ pair with the given entry count.
func NewNVMeQueuePair(mm *mem.PhysMem, entries uint32) (*NVMeQueuePair, error) {
	if entries < 2 || entries > 65536 {
		return nil, fmt.Errorf("nvme: queue depth %d out of range (2..64K)", entries)
	}
	q := &NVMeQueuePair{mm: mm, entries: entries}
	for _, alloc := range []struct {
		pa    *mem.PA
		bytes uint64
	}{
		{&q.sqPA, uint64(entries) * NVMeCommandBytes},
		{&q.cqPA, uint64(entries) * NVMeCompletionBytes},
	} {
		nfr := int((alloc.bytes + mem.PageSize - 1) / mem.PageSize)
		f, err := mm.AllocFrames(nfr)
		if err != nil {
			return nil, fmt.Errorf("nvme: allocating queue: %w", err)
		}
		*alloc.pa = f.PA()
		for i := 0; i < nfr; i++ {
			q.frames = append(q.frames, f+mem.PFN(i))
		}
	}
	return q, nil
}

// Free releases the queue memory.
func (q *NVMeQueuePair) Free() error {
	for _, f := range q.frames {
		if err := q.mm.FreeFrame(f); err != nil {
			return err
		}
	}
	q.frames = nil
	return nil
}

// SQPA and CQPA return the queues' physical bases (for device mapping).
func (q *NVMeQueuePair) SQPA() mem.PA { return q.sqPA }

// CQPA returns the completion queue's physical base.
func (q *NVMeQueuePair) CQPA() mem.PA { return q.cqPA }

// SQBytes returns the submission queue size in bytes.
func (q *NVMeQueuePair) SQBytes() uint32 { return q.entries * NVMeCommandBytes }

// CQBytes returns the completion queue size in bytes.
func (q *NVMeQueuePair) CQBytes() uint32 { return q.entries * NVMeCompletionBytes }

// SetDeviceAddrs records the IOVAs at which the device sees the queues.
func (q *NVMeQueuePair) SetDeviceAddrs(sq, cq uint64) { q.sqAddr, q.cqAddr = sq, cq }

// Reset returns the queue pair to its initial state: cursors and command
// ids zeroed and both queues' memory cleared, as an NVMe controller reset
// does. In-flight commands are lost (the driver resubmits).
func (q *NVMeQueuePair) Reset() error {
	q.sqHead, q.sqTail, q.cqTail, q.nextCID = 0, 0, 0, 0
	if err := q.mm.Fill(q.sqPA, uint64(q.SQBytes()), 0); err != nil {
		return err
	}
	return q.mm.Fill(q.cqPA, uint64(q.CQBytes()), 0)
}

// Entries returns the queue depth.
func (q *NVMeQueuePair) Entries() uint32 { return q.entries }

// Pending returns the number of submitted, unconsumed commands.
func (q *NVMeQueuePair) Pending() uint32 { return (q.sqTail + q.entries - q.sqHead) % q.entries }

// Submit writes a command at the SQ tail (host-side, direct memory access)
// and returns its command id. Fails when the queue is full.
func (q *NVMeQueuePair) Submit(bufIOVA uint64, block uint64, length uint32, opcode uint32) (uint32, error) {
	if (q.sqTail+1)%q.entries == q.sqHead {
		return 0, fmt.Errorf("nvme: submission queue full")
	}
	cid := q.nextCID
	q.nextCID++
	pa := q.sqPA + mem.PA(q.sqTail*NVMeCommandBytes)
	if err := q.mm.WriteU64(pa, bufIOVA); err != nil {
		return 0, err
	}
	if err := q.mm.WriteU64(pa+8, block); err != nil {
		return 0, err
	}
	if err := q.mm.WriteU64(pa+16, uint64(length)|uint64(opcode)<<32); err != nil {
		return 0, err
	}
	if err := q.mm.WriteU64(pa+24, uint64(cid)); err != nil {
		return 0, err
	}
	q.sqTail = (q.sqTail + 1) % q.entries
	return cid, nil
}

// Completion is a reaped CQ entry.
type Completion struct {
	CID    uint32
	Status uint32
}

// ReapCompletion reads and consumes the oldest unread completion, if any.
// completionsSeen tracks how many the host has already consumed.
func (q *NVMeQueuePair) ReapCompletion(seen uint32) (Completion, bool, error) {
	if seen == q.cqTail || (q.cqTail+q.entries-seen)%q.entries == 0 {
		return Completion{}, false, nil
	}
	pa := q.cqPA + mem.PA((seen%q.entries)*NVMeCompletionBytes)
	w, err := q.mm.ReadU64(pa)
	if err != nil {
		return Completion{}, false, err
	}
	return Completion{CID: uint32(w), Status: uint32(w >> 32)}, true, nil
}

// NVMe is the device-side SSD model: a namespace of blocks plus the queue
// consumption logic.
type NVMe struct {
	bdf       pci.BDF
	eng       *dma.Engine
	BlockSize uint32
	store     blockStore // sparse namespace contents (see blockstore.go)
	wbuf      []byte     // reusable DMA target for write commands

	Commands uint64
	Faults   uint64
}

// NewNVMe creates an SSD with the given number of blocks.
func NewNVMe(bdf pci.BDF, eng *dma.Engine, blockSize uint32, blocks uint64) *NVMe {
	n := &NVMe{bdf: bdf, eng: eng, BlockSize: blockSize, store: newBlockStore(uint64(blockSize) * blocks)}
	eng.AddCloser(n.store.release)
	return n
}

// BDF returns the device's PCI identity.
func (n *NVMe) BDF() pci.BDF { return n.bdf }

// Blocks returns the namespace capacity in blocks.
func (n *NVMe) Blocks() uint64 { return n.store.size / uint64(n.BlockSize) }

// writeScratch returns a reused sz-byte DMA target for write commands.
func (n *NVMe) writeScratch(sz uint32) []byte {
	if uint32(cap(n.wbuf)) < sz {
		n.wbuf = make([]byte, sz)
	}
	return n.wbuf[:sz]
}

// ResetDevice models a controller-level reset: an injected hang is cleared
// so the device resumes consuming its queues. Namespace contents survive.
func (n *NVMe) ResetDevice() { n.eng.Faults().ClearHang(n.bdf) }

// processPRP performs a scatter-gather transfer: fetch the PRP list (one
// 8-byte IOVA per 4 KiB segment) through translation, then DMA each
// segment. Any faulting segment fails the whole command.
func (n *NVMe) processPRP(listIOVA uint64, off uint64, length uint32, op uint32) uint32 {
	const seg = 4096
	entries := int((length + seg - 1) / seg)
	for i := 0; i < entries; i++ {
		iova, err := n.eng.ReadU64(n.bdf, listIOVA+uint64(i*8))
		if err != nil {
			n.Faults++
			return NVMeStatusFault
		}
		sz := uint32(seg)
		if rem := length - uint32(i*seg); rem < sz {
			sz = rem
		}
		so := off + uint64(i*seg)
		switch op {
		case NVMeOpRead:
			if err := n.eng.Write(n.bdf, iova, n.store.read(so, sz)); err != nil {
				n.Faults++
				return NVMeStatusFault
			}
		case NVMeOpWrite:
			buf := n.writeScratch(sz)
			if err := n.eng.Read(n.bdf, iova, buf); err != nil {
				n.Faults++
				return NVMeStatusFault
			}
			n.store.write(so, buf)
		}
	}
	return NVMeStatusOK
}

// ProcessSQ consumes up to max commands from the queue pair, strictly in
// submission order, performing the data DMAs and posting completions.
func (n *NVMe) ProcessSQ(q *NVMeQueuePair, max int) (int, error) {
	if n.eng.Faults().HangCheck(n.bdf) {
		return 0, nil // wedged: stops consuming the SQ (watchdog territory)
	}
	done := 0
	for done < max && q.Pending() > 0 {
		cmdAddr := q.sqAddr + uint64(q.sqHead*NVMeCommandBytes)
		bufIOVA, err := n.eng.ReadU64(n.bdf, cmdAddr)
		if err != nil {
			n.Faults++
			return done, fmt.Errorf("nvme: command fetch: %w", err)
		}
		block, err := n.eng.ReadU64(n.bdf, cmdAddr+8)
		if err != nil {
			return done, err
		}
		w2, err := n.eng.ReadU64(n.bdf, cmdAddr+16)
		if err != nil {
			return done, err
		}
		// A flaky controller may mis-parse the fetched command: flip a bit
		// across the buffer-address/geometry words.
		n.eng.Faults().FlipDescriptor(n.bdf, cmdAddr, &bufIOVA, &w2)
		w3, err := n.eng.ReadU64(n.bdf, cmdAddr+24)
		if err != nil {
			return done, err
		}
		length, opcode, cid := uint32(w2), uint32(w2>>32), uint32(w3)

		status := uint32(NVMeStatusOK)
		off := block * uint64(n.BlockSize)
		op := opcode &^ uint32(NVMeFlagPRPList)
		if off+uint64(length) > n.store.size || (op != NVMeOpRead && op != NVMeOpWrite) {
			status = NVMeStatusLBA
		} else if opcode&NVMeFlagPRPList != 0 {
			status = n.processPRP(bufIOVA, off, length, op)
		} else {
			switch op {
			case NVMeOpRead: // device -> host memory
				if err := n.eng.Write(n.bdf, bufIOVA, n.store.read(off, length)); err != nil {
					n.Faults++
					status = NVMeStatusFault
				}
			case NVMeOpWrite: // host memory -> device
				buf := n.writeScratch(length)
				if err := n.eng.Read(n.bdf, bufIOVA, buf); err != nil {
					n.Faults++
					status = NVMeStatusFault
				} else {
					n.store.write(off, buf)
				}
			}
		}
		// Post the completion via DMA.
		cqAddr := q.cqAddr + uint64((q.cqTail%q.entries)*NVMeCompletionBytes)
		if err := n.eng.WriteU64(n.bdf, cqAddr, uint64(cid)|uint64(status)<<32); err != nil {
			n.Faults++
			return done, fmt.Errorf("nvme: completion post: %w", err)
		}
		q.cqTail = (q.cqTail + 1) % q.entries
		q.sqHead = (q.sqHead + 1) % q.entries
		n.Commands++
		done++
	}
	return done, nil
}
