package device

import (
	"bytes"
	"math/rand"
	"testing"

	"riommu/internal/dma"
	"riommu/internal/iommu"
	"riommu/internal/mem"
	"riommu/internal/pci"
	"riommu/internal/ring"
)

var bdf = pci.NewBDF(0, 3, 0)

// fixture: identity-translated engine with rings and buffers.
type fixture struct {
	mm     *mem.PhysMem
	eng    *dma.Engine
	rx, tx *ring.Ring
	nic    *NIC
}

func newFixture(t *testing.T, p NICProfile) *fixture {
	t.Helper()
	mm := mustMem(t, 512*mem.PageSize)
	eng := dma.NewEngine(mm, iommu.Identity{})
	rx, err := ring.New(mm, 64)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := ring.New(mm, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Identity addressing: device sees rings at their physical addresses.
	rx.SetDeviceAddr(uint64(rx.BasePA()))
	tx.SetDeviceAddr(uint64(tx.BasePA()))
	nic := NewNIC(p, bdf, eng, rx, tx)
	nic.CaptureTx = true
	return &fixture{mm: mm, eng: eng, rx: rx, tx: tx, nic: nic}
}

func (f *fixture) buffer(t *testing.T, data []byte) (mem.PA, uint32) {
	t.Helper()
	fr, err := f.mm.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 0 {
		if err := f.mm.Write(fr.PA(), data); err != nil {
			t.Fatal(err)
		}
	}
	return fr.PA(), uint32(len(data))
}

func TestNICTransmitSingleBuffer(t *testing.T) {
	f := newFixture(t, ProfileBRCM)
	payload := []byte("the quick brown fox")
	pa, n := f.buffer(t, payload)
	if _, err := f.tx.Post(ring.Descriptor{Addr: uint64(pa), Len: n}); err != nil {
		t.Fatal(err)
	}
	sent, err := f.nic.ProcessTx(10)
	if err != nil {
		t.Fatalf("ProcessTx: %v", err)
	}
	if sent != 1 || f.nic.TxPackets != 1 {
		t.Errorf("sent=%d TxPackets=%d", sent, f.nic.TxPackets)
	}
	if !bytes.Equal(f.nic.LastTx, payload) {
		t.Errorf("wire payload = %q", f.nic.LastTx)
	}
	// Completion published back to the descriptor.
	d, err := f.tx.ReadSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Flags&ring.FlagDone == 0 {
		t.Error("descriptor not marked done")
	}
}

func TestNICTransmitTwoBuffers(t *testing.T) {
	f := newFixture(t, ProfileMLX)
	header := bytes.Repeat([]byte{0xaa}, ProfileMLX.HeaderBytes)
	body := []byte("packet body")
	paH, nH := f.buffer(t, header)
	paB, nB := f.buffer(t, body)
	if _, err := f.tx.Post(ring.Descriptor{Addr: uint64(paH), Len: nH}); err != nil {
		t.Fatal(err)
	}
	// Only half a packet posted: the device must wait.
	sent, err := f.nic.ProcessTx(10)
	if err != nil || sent != 0 {
		t.Fatalf("half packet transmitted: sent=%d err=%v", sent, err)
	}
	if _, err := f.tx.Post(ring.Descriptor{Addr: uint64(paB), Len: nB}); err != nil {
		t.Fatal(err)
	}
	sent, err = f.nic.ProcessTx(10)
	if err != nil || sent != 1 {
		t.Fatalf("sent=%d err=%v", sent, err)
	}
	want := append(append([]byte{}, header...), body...)
	if !bytes.Equal(f.nic.LastTx, want) {
		t.Errorf("wire = %d bytes, want %d (header+body)", len(f.nic.LastTx), len(want))
	}
	if f.nic.TxBytes != uint64(len(want)) {
		t.Errorf("TxBytes = %d", f.nic.TxBytes)
	}
}

func TestNICReceive(t *testing.T) {
	f := newFixture(t, ProfileBRCM)
	pa, _ := f.buffer(t, nil)
	if _, err := f.rx.Post(ring.Descriptor{Addr: uint64(pa), Len: 2048}); err != nil {
		t.Fatal(err)
	}
	frame := []byte("incoming frame data")
	if err := f.nic.DeliverPacket(frame); err != nil {
		t.Fatalf("DeliverPacket: %v", err)
	}
	got, err := f.mm.Read(pa, uint64(len(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frame) {
		t.Errorf("buffer = %q", got)
	}
	d, _ := f.rx.ReadSlot(0)
	if d.Flags&ring.FlagDone == 0 || d.Len != uint32(len(frame)) {
		t.Errorf("completion = %+v", d)
	}
	if f.nic.RxPackets != 1 {
		t.Errorf("RxPackets = %d", f.nic.RxPackets)
	}
}

func TestNICReceiveSplit(t *testing.T) {
	f := newFixture(t, ProfileMLX)
	paH, _ := f.buffer(t, nil)
	paB, _ := f.buffer(t, nil)
	if _, err := f.rx.Post(ring.Descriptor{Addr: uint64(paH), Len: 2048}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rx.Post(ring.Descriptor{Addr: uint64(paB), Len: 2048}); err != nil {
		t.Fatal(err)
	}
	frame := bytes.Repeat([]byte{7}, 300)
	if err := f.nic.DeliverPacket(frame); err != nil {
		t.Fatal(err)
	}
	// Header bytes landed in the first buffer, the rest in the second.
	h, _ := f.mm.Read(paH, uint64(ProfileMLX.HeaderBytes))
	b, _ := f.mm.Read(paB, uint64(300-ProfileMLX.HeaderBytes))
	if !bytes.Equal(h, frame[:ProfileMLX.HeaderBytes]) || !bytes.Equal(b, frame[ProfileMLX.HeaderBytes:]) {
		t.Error("split landing wrong")
	}
}

func TestNICRxUnderrun(t *testing.T) {
	f := newFixture(t, ProfileBRCM)
	if err := f.nic.DeliverPacket([]byte("x")); err == nil {
		t.Error("delivery into empty rx ring should fail")
	}
}

func TestNICRxBufferTooSmall(t *testing.T) {
	f := newFixture(t, ProfileBRCM)
	pa, _ := f.buffer(t, nil)
	if _, err := f.rx.Post(ring.Descriptor{Addr: uint64(pa), Len: 8}); err != nil {
		t.Fatal(err)
	}
	if err := f.nic.DeliverPacket(bytes.Repeat([]byte{1}, 100)); err == nil {
		t.Error("oversized delivery should fail")
	}
}

func TestNVMeReadWrite(t *testing.T) {
	mm := mustMem(t, 512*mem.PageSize)
	eng := dma.NewEngine(mm, iommu.Identity{})
	ssd := NewNVMe(bdf, eng, 4096, 64)
	q, err := NewNVMeQueuePair(mm, 16)
	if err != nil {
		t.Fatal(err)
	}
	q.SetDeviceAddrs(uint64(q.SQPA()), uint64(q.CQPA()))

	// Host writes a block, then reads it back into a second buffer.
	src, _ := mm.AllocFrame()
	dst, _ := mm.AllocFrame()
	data := bytes.Repeat([]byte("nvme"), 1024)
	if err := mm.Write(src.PA(), data); err != nil {
		t.Fatal(err)
	}
	cidW, err := q.Submit(uint64(src.PA()), 5, 4096, NVMeOpWrite)
	if err != nil {
		t.Fatal(err)
	}
	cidR, err := q.Submit(uint64(dst.PA()), 5, 4096, NVMeOpRead)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ssd.ProcessSQ(q, 10)
	if err != nil {
		t.Fatalf("ProcessSQ: %v", err)
	}
	if n != 2 {
		t.Fatalf("processed %d commands", n)
	}
	// In-order completion: write first, then read.
	c0, ok, err := q.ReapCompletion(0)
	if err != nil || !ok {
		t.Fatalf("completion 0: %v %v", ok, err)
	}
	c1, ok, err := q.ReapCompletion(1)
	if err != nil || !ok {
		t.Fatalf("completion 1: %v %v", ok, err)
	}
	if c0.CID != cidW || c1.CID != cidR {
		t.Errorf("completion order: %d,%d want %d,%d", c0.CID, c1.CID, cidW, cidR)
	}
	if c0.Status != NVMeStatusOK || c1.Status != NVMeStatusOK {
		t.Errorf("statuses %d %d", c0.Status, c1.Status)
	}
	got, _ := mm.Read(dst.PA(), uint64(len(data)))
	if !bytes.Equal(got, data) {
		t.Error("disk round trip corrupted")
	}
	if err := q.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestNVMeBadLBA(t *testing.T) {
	mm := mustMem(t, 128*mem.PageSize)
	eng := dma.NewEngine(mm, iommu.Identity{})
	ssd := NewNVMe(bdf, eng, 4096, 4)
	q, _ := NewNVMeQueuePair(mm, 8)
	q.SetDeviceAddrs(uint64(q.SQPA()), uint64(q.CQPA()))
	buf, _ := mm.AllocFrame()
	if _, err := q.Submit(uint64(buf.PA()), 99, 4096, NVMeOpRead); err != nil {
		t.Fatal(err)
	}
	if _, err := ssd.ProcessSQ(q, 1); err != nil {
		t.Fatal(err)
	}
	c, ok, _ := q.ReapCompletion(0)
	if !ok || c.Status != NVMeStatusLBA {
		t.Errorf("completion = %+v ok=%v, want LBA error", c, ok)
	}
}

func TestNVMeQueueFull(t *testing.T) {
	mm := mustMem(t, 128*mem.PageSize)
	q, err := NewNVMeQueuePair(mm, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := mm.AllocFrame()
	for i := 0; i < 3; i++ {
		if _, err := q.Submit(uint64(buf.PA()), 0, 64, NVMeOpRead); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := q.Submit(uint64(buf.PA()), 0, 64, NVMeOpRead); err == nil {
		t.Error("submit to full queue should fail")
	}
	if _, err := NewNVMeQueuePair(mm, 1); err == nil {
		t.Error("depth-1 queue should be rejected")
	}
}

func TestSATAOutOfOrderCompletion(t *testing.T) {
	mm := mustMem(t, 512*mem.PageSize)
	eng := dma.NewEngine(mm, iommu.Identity{})
	disk := NewSATA(bdf, eng, 512, 1024)

	// Write distinct data to 8 blocks via 8 slots.
	var bufs []mem.PA
	for i := 0; i < 8; i++ {
		f, _ := mm.AllocFrame()
		data := bytes.Repeat([]byte{byte(i + 1)}, 512)
		if err := mm.Write(f.PA(), data); err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, f.PA())
		if _, err := disk.Issue(SATACommand{BufIOVA: uint64(f.PA()), Block: uint64(i), Length: 512, Op: SATAWrite}); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	order, err := disk.CompleteAll(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("completed %d", len(order))
	}
	// The shuffle must actually produce out-of-order completion for this
	// seed (the property rIOMMU cannot serve).
	inOrder := true
	for i, s := range order {
		if s != i {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("seed produced in-order completion; pick another seed")
	}
	// Data integrity regardless of order: read back block 3.
	rf, _ := mm.AllocFrame()
	if _, err := disk.Issue(SATACommand{BufIOVA: uint64(rf.PA()), Block: 3, Length: 512, Op: SATARead}); err != nil {
		t.Fatal(err)
	}
	if _, err := disk.CompleteAll(rng); err != nil {
		t.Fatal(err)
	}
	got, _ := mm.Read(rf.PA(), 512)
	if !bytes.Equal(got, bytes.Repeat([]byte{4}, 512)) {
		t.Error("block 3 contents wrong")
	}
	if disk.FreeSlots() != SATASlots {
		t.Errorf("FreeSlots = %d", disk.FreeSlots())
	}
	_ = bufs
}

func TestSATASlotExhaustion(t *testing.T) {
	mm := mustMem(t, 128*mem.PageSize)
	eng := dma.NewEngine(mm, iommu.Identity{})
	disk := NewSATA(bdf, eng, 512, 1024)
	f, _ := mm.AllocFrame()
	for i := 0; i < SATASlots; i++ {
		if _, err := disk.Issue(SATACommand{BufIOVA: uint64(f.PA()), Block: 0, Length: 512, Op: SATARead}); err != nil {
			t.Fatalf("issue %d: %v", i, err)
		}
	}
	if _, err := disk.Issue(SATACommand{}); err == nil {
		t.Error("33rd issue should fail")
	}
}
