package device

import "sync"

// The block devices (SATA and NVMe) back their namespaces with a sparse
// chunked store: chunk buffers are materialized on first write, and reads of
// never-written bytes observe zeros — indistinguishable from one flat zeroed
// array, but a mostly-idle multi-hundred-MiB disk costs only its touched
// working set. Eagerly zeroing a flat array per device was a dominant cost
// of building a fresh world in experiment and campaign grids.
//
// Chunks recycle through a process-wide pool *without* being zeroed: each
// chunk carries a per-page valid-prefix watermark — bytes [0, valid) of a
// page hold real data, bytes beyond it logically read as zero even though
// the recycled buffer physically holds garbage there. Writes extend the
// watermark (zeroing any gap they skip over); reads splice zeros in for the
// invalid suffix. Block workloads write page-aligned records, so the common
// case extends the watermark with no memclr at all.
const (
	storeChunk    = 1 << 18 // 256 KiB chunk granule
	storePage     = 1 << 12 // watermark granule
	pagesPerChunk = storeChunk / storePage
)

// chunkBuf is one pooled chunk: raw bytes plus the per-page watermarks.
type chunkBuf struct {
	data  []byte
	valid []uint32 // valid[p]: bytes [0, v) of page p hold real data
}

// chunkPool recycles chunk buffers across devices and simulated worlds.
var chunkPool sync.Pool

func getChunkBuf() *chunkBuf {
	if v := chunkPool.Get(); v != nil {
		b := v.(*chunkBuf)
		clear(b.valid) // garbage bytes are fenced off by zero watermarks
		return b
	}
	return &chunkBuf{
		data:  make([]byte, storeChunk),
		valid: make([]uint32, pagesPerChunk),
	}
}

// blockStore is a sparse byte-addressable backing store.
type blockStore struct {
	size    uint64      // virtual size in bytes
	chunks  []*chunkBuf // nil chunk = all zeros (never written)
	zeroBuf []byte      // shared all-zero read source, never written
	asmBuf  []byte      // assembly target for watermark-splicing reads
}

func newBlockStore(size uint64) blockStore {
	return blockStore{
		size:   size,
		chunks: make([]*chunkBuf, (size+storeChunk-1)/storeChunk),
	}
}

// release returns every materialized chunk to the process-wide pool. The
// store reads as all zeros afterwards; call it only when the device is done.
func (s *blockStore) release() {
	for i, c := range s.chunks {
		if c != nil {
			chunkPool.Put(c)
			s.chunks[i] = nil
		}
	}
}

// read returns n bytes of content at off. The returned slice is valid until
// the next read and must not be written.
func (s *blockStore) read(off uint64, n uint32) []byte {
	ci, co := off/storeChunk, off%storeChunk
	if co+uint64(n) <= storeChunk {
		c := s.chunks[ci]
		if c == nil {
			if uint32(len(s.zeroBuf)) < n {
				s.zeroBuf = make([]byte, n)
			}
			return s.zeroBuf[:n]
		}
		// Zero-copy when the range sits inside one page's valid prefix.
		if pi, po := co/storePage, co%storePage; po+uint64(n) <= storePage &&
			po+uint64(n) <= uint64(c.valid[pi]) {
			return c.data[co : co+uint64(n)]
		}
	}
	if uint32(cap(s.asmBuf)) < n {
		s.asmBuf = make([]byte, n)
	}
	out := s.asmBuf[:n]
	for done := uint64(0); done < uint64(n); {
		g := off + done
		ci, co := g/storeChunk, g%storeChunk
		pi, po := co/storePage, co%storePage
		take := storePage - po
		if rem := uint64(n) - done; take > rem {
			take = rem
		}
		c := s.chunks[ci]
		if c == nil {
			clear(out[done : done+take])
			done += take
			continue
		}
		// Valid prefix from the chunk, zeros for the garbage suffix.
		vend := min(uint64(c.valid[pi]), po+take)
		if vend > po {
			copy(out[done:done+(vend-po)], c.data[co:])
		} else {
			vend = po
		}
		clear(out[done+(vend-po) : done+take])
		done += take
	}
	return out
}

// write stores src at off, materializing chunks on first touch and
// extending each touched page's valid watermark.
func (s *blockStore) write(off uint64, src []byte) {
	for done := uint64(0); done < uint64(len(src)); {
		g := off + done
		ci, co := g/storeChunk, g%storeChunk
		c := s.chunks[ci]
		if c == nil {
			c = getChunkBuf()
			s.chunks[ci] = c
		}
		pi, po := co/storePage, co%storePage
		take := storePage - po
		if rem := uint64(len(src)) - done; take > rem {
			take = rem
		}
		v := uint64(c.valid[pi])
		if v < po {
			// The write skips over never-written bytes of a recycled
			// buffer: normalize the gap so it reads back as zero.
			clear(c.data[co-po+v : co])
		}
		copy(c.data[co:co+take], src[done:done+take])
		if end := po + take; end > v {
			c.valid[pi] = uint32(end)
		}
		done += take
	}
}
