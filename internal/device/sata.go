package device

import (
	"fmt"
	"math/rand"

	"riommu/internal/dma"
	"riommu/internal/pci"
)

// SATA models an AHCI disk (§4, Applicability): a single queue of 32 command
// slots that the drive may process in arbitrary order. The out-of-order
// completion is exactly why rIOMMU's flat sequential tables do not target
// AHCI — and, per the paper's Bonnie++ measurement, why they do not need to:
// SATA drives are too slow for IOMMU overhead to matter.
const SATASlots = 32

// SATA command opcodes.
const (
	SATARead  = 0 // device writes host memory
	SATAWrite = 1 // device reads host memory
)

// SATACommand is one issued command slot.
type SATACommand struct {
	BufIOVA uint64
	Block   uint64
	Length  uint32
	Op      int
}

// SATA is the drive model with its single 32-slot queue.
type SATA struct {
	bdf       pci.BDF
	eng       *dma.Engine
	BlockSize uint32

	store   blockStore // sparse disk contents (see blockstore.go)
	scratch []byte     // reusable DMA target for write commands

	slots  [SATASlots]*SATACommand
	issued uint32 // bitmask of occupied slots

	Commands uint64
	Faults   uint64

	// SeqLatencyCycles is the device-side service time per command,
	// reflecting that disks, not the CPU, bound SATA throughput.
	SeqLatencyCycles uint64
}

// NewSATA creates a drive with the given geometry.
func NewSATA(bdf pci.BDF, eng *dma.Engine, blockSize uint32, blocks uint64) *SATA {
	s := &SATA{
		bdf:              bdf,
		eng:              eng,
		BlockSize:        blockSize,
		store:            newBlockStore(uint64(blockSize) * blocks),
		SeqLatencyCycles: 300_000, // ~100 µs/op at 3.1 GHz: a fast SATA SSD
	}
	s.eng.AddCloser(s.store.release)
	return s
}

// storageRead returns n bytes of disk content at off. The returned slice is
// valid until the next storageRead and must not be written.
func (s *SATA) storageRead(off uint64, n uint32) []byte { return s.store.read(off, n) }

// storageWrite stores src at off, materializing chunks on first touch.
func (s *SATA) storageWrite(off uint64, src []byte) { s.store.write(off, src) }

// BDF returns the drive's PCI identity.
func (s *SATA) BDF() pci.BDF { return s.bdf }

// ResetDevice models an AHCI port reset: every issued-but-incomplete command
// is discarded (the driver resubmits) and an injected hang is cleared.
func (s *SATA) ResetDevice() {
	for i := range s.slots {
		s.slots[i] = nil
	}
	s.issued = 0
	s.eng.Faults().ClearHang(s.bdf)
}

// FreeSlots returns how many of the 32 slots are unoccupied.
func (s *SATA) FreeSlots() int {
	n := 0
	for i := 0; i < SATASlots; i++ {
		if s.issued&(1<<i) == 0 {
			n++
		}
	}
	return n
}

// Issue places a command in a free slot, returning the slot index.
func (s *SATA) Issue(cmd SATACommand) (int, error) {
	for i := 0; i < SATASlots; i++ {
		if s.issued&(1<<i) == 0 {
			c := cmd
			s.slots[i] = &c
			s.issued |= 1 << i
			return i, nil
		}
	}
	return -1, fmt.Errorf("sata: all %d slots busy", SATASlots)
}

// CompleteAll processes every issued slot in a pseudo-random order drawn
// from rng (pass a seeded source for determinism), returning the slots in
// completion order. This is the AHCI behaviour that breaks the sequential
// (un)mapping premise rIOMMU relies on.
func (s *SATA) CompleteAll(rng *rand.Rand) ([]int, error) {
	if s.eng.Faults().HangCheck(s.bdf) {
		return nil, nil // wedged: issued commands sit in their slots (watchdog territory)
	}
	var order []int
	for i := 0; i < SATASlots; i++ {
		if s.issued&(1<<i) != 0 {
			order = append(order, i)
		}
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, slot := range order {
		if err := s.complete(slot); err != nil {
			return order, err
		}
	}
	return order, nil
}

func (s *SATA) complete(slot int) error {
	cmd := s.slots[slot]
	if cmd == nil {
		return fmt.Errorf("sata: completing empty slot %d", slot)
	}
	off := cmd.Block * uint64(s.BlockSize)
	if off+uint64(cmd.Length) > s.store.size {
		return fmt.Errorf("sata: block %d out of range", cmd.Block)
	}
	switch cmd.Op {
	case SATARead:
		if err := s.eng.Write(s.bdf, cmd.BufIOVA, s.storageRead(off, cmd.Length)); err != nil {
			s.Faults++
			return fmt.Errorf("sata: read DMA: %w", err)
		}
	case SATAWrite:
		if uint32(cap(s.scratch)) < cmd.Length {
			s.scratch = make([]byte, cmd.Length)
		}
		buf := s.scratch[:cmd.Length]
		if err := s.eng.Read(s.bdf, cmd.BufIOVA, buf); err != nil {
			s.Faults++
			return fmt.Errorf("sata: write DMA: %w", err)
		}
		s.storageWrite(off, buf)
	default:
		return fmt.Errorf("sata: bad opcode %d", cmd.Op)
	}
	s.slots[slot] = nil
	s.issued &^= 1 << slot
	s.Commands++
	return nil
}
