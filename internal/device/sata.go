package device

import (
	"fmt"
	"math/rand"

	"riommu/internal/dma"
	"riommu/internal/pci"
)

// SATA models an AHCI disk (§4, Applicability): a single queue of 32 command
// slots that the drive may process in arbitrary order. The out-of-order
// completion is exactly why rIOMMU's flat sequential tables do not target
// AHCI — and, per the paper's Bonnie++ measurement, why they do not need to:
// SATA drives are too slow for IOMMU overhead to matter.
const SATASlots = 32

// SATA command opcodes.
const (
	SATARead  = 0 // device writes host memory
	SATAWrite = 1 // device reads host memory
)

// SATACommand is one issued command slot.
type SATACommand struct {
	BufIOVA uint64
	Block   uint64
	Length  uint32
	Op      int
}

// sataChunk is the materialization granule of the drive's backing store:
// chunks are allocated (zeroed) on first write, and reads of never-written
// chunks observe zeros — indistinguishable from one flat zeroed array, but a
// mostly-idle multi-hundred-MiB disk costs only its touched working set.
const sataChunk = 1 << 18 // 256 KiB

// SATA is the drive model with its single 32-slot queue.
type SATA struct {
	bdf       pci.BDF
	eng       *dma.Engine
	BlockSize uint32

	storageSize uint64   // virtual disk size in bytes
	chunks      [][]byte // nil chunk = all zeros (never written)
	zeroBuf     []byte   // shared all-zero read source, never written
	asmBuf      []byte   // assembly target for chunk-crossing reads
	scratch     []byte   // reusable DMA target for write commands

	slots  [SATASlots]*SATACommand
	issued uint32 // bitmask of occupied slots

	Commands uint64
	Faults   uint64

	// SeqLatencyCycles is the device-side service time per command,
	// reflecting that disks, not the CPU, bound SATA throughput.
	SeqLatencyCycles uint64
}

// NewSATA creates a drive with the given geometry.
func NewSATA(bdf pci.BDF, eng *dma.Engine, blockSize uint32, blocks uint64) *SATA {
	size := uint64(blockSize) * blocks
	return &SATA{
		bdf:              bdf,
		eng:              eng,
		BlockSize:        blockSize,
		storageSize:      size,
		chunks:           make([][]byte, (size+sataChunk-1)/sataChunk),
		SeqLatencyCycles: 300_000, // ~100 µs/op at 3.1 GHz: a fast SATA SSD
	}
}

// storageRead returns n bytes of disk content at off. The returned slice is
// valid until the next storageRead and must not be written.
func (s *SATA) storageRead(off uint64, n uint32) []byte {
	ci, co := off/sataChunk, off%sataChunk
	if co+uint64(n) <= sataChunk {
		if c := s.chunks[ci]; c != nil {
			return c[co : co+uint64(n)]
		}
		if uint32(len(s.zeroBuf)) < n {
			s.zeroBuf = make([]byte, n)
		}
		return s.zeroBuf[:n]
	}
	if uint32(cap(s.asmBuf)) < n {
		s.asmBuf = make([]byte, n)
	}
	out := s.asmBuf[:n]
	for done := uint64(0); done < uint64(n); {
		ci, co = (off+done)/sataChunk, (off+done)%sataChunk
		take := sataChunk - co
		if rem := uint64(n) - done; take > rem {
			take = rem
		}
		if c := s.chunks[ci]; c != nil {
			copy(out[done:done+take], c[co:])
		} else {
			clear(out[done : done+take])
		}
		done += take
	}
	return out
}

// storageWrite stores src at off, materializing chunks on first touch.
func (s *SATA) storageWrite(off uint64, src []byte) {
	for done := 0; done < len(src); {
		ci, co := (off+uint64(done))/sataChunk, (off+uint64(done))%sataChunk
		c := s.chunks[ci]
		if c == nil {
			c = make([]byte, sataChunk)
			s.chunks[ci] = c
		}
		done += copy(c[co:], src[done:])
	}
}

// BDF returns the drive's PCI identity.
func (s *SATA) BDF() pci.BDF { return s.bdf }

// ResetDevice models an AHCI port reset: every issued-but-incomplete command
// is discarded (the driver resubmits) and an injected hang is cleared.
func (s *SATA) ResetDevice() {
	for i := range s.slots {
		s.slots[i] = nil
	}
	s.issued = 0
	s.eng.Faults().ClearHang(s.bdf)
}

// FreeSlots returns how many of the 32 slots are unoccupied.
func (s *SATA) FreeSlots() int {
	n := 0
	for i := 0; i < SATASlots; i++ {
		if s.issued&(1<<i) == 0 {
			n++
		}
	}
	return n
}

// Issue places a command in a free slot, returning the slot index.
func (s *SATA) Issue(cmd SATACommand) (int, error) {
	for i := 0; i < SATASlots; i++ {
		if s.issued&(1<<i) == 0 {
			c := cmd
			s.slots[i] = &c
			s.issued |= 1 << i
			return i, nil
		}
	}
	return -1, fmt.Errorf("sata: all %d slots busy", SATASlots)
}

// CompleteAll processes every issued slot in a pseudo-random order drawn
// from rng (pass a seeded source for determinism), returning the slots in
// completion order. This is the AHCI behaviour that breaks the sequential
// (un)mapping premise rIOMMU relies on.
func (s *SATA) CompleteAll(rng *rand.Rand) ([]int, error) {
	if s.eng.Faults().HangCheck(s.bdf) {
		return nil, nil // wedged: issued commands sit in their slots (watchdog territory)
	}
	var order []int
	for i := 0; i < SATASlots; i++ {
		if s.issued&(1<<i) != 0 {
			order = append(order, i)
		}
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, slot := range order {
		if err := s.complete(slot); err != nil {
			return order, err
		}
	}
	return order, nil
}

func (s *SATA) complete(slot int) error {
	cmd := s.slots[slot]
	if cmd == nil {
		return fmt.Errorf("sata: completing empty slot %d", slot)
	}
	off := cmd.Block * uint64(s.BlockSize)
	if off+uint64(cmd.Length) > s.storageSize {
		return fmt.Errorf("sata: block %d out of range", cmd.Block)
	}
	switch cmd.Op {
	case SATARead:
		if err := s.eng.Write(s.bdf, cmd.BufIOVA, s.storageRead(off, cmd.Length)); err != nil {
			s.Faults++
			return fmt.Errorf("sata: read DMA: %w", err)
		}
	case SATAWrite:
		if uint32(cap(s.scratch)) < cmd.Length {
			s.scratch = make([]byte, cmd.Length)
		}
		buf := s.scratch[:cmd.Length]
		if err := s.eng.Read(s.bdf, cmd.BufIOVA, buf); err != nil {
			s.Faults++
			return fmt.Errorf("sata: write DMA: %w", err)
		}
		s.storageWrite(off, buf)
	default:
		return fmt.Errorf("sata: bad opcode %d", cmd.Op)
	}
	s.slots[slot] = nil
	s.issued &^= 1 << slot
	s.Commands++
	return nil
}
