package device

import (
	"bytes"
	"testing"

	"riommu/internal/dma"
	"riommu/internal/iommu"
	"riommu/internal/mem"
)

// TestNVMePRPList exercises the scatter-gather path: a 3-page transfer whose
// segments live in discontiguous frames addressed through a PRP list.
func TestNVMePRPList(t *testing.T) {
	mm := mustMem(t, 512*mem.PageSize)
	eng := dma.NewEngine(mm, iommu.Identity{})
	ssd := NewNVMe(bdf, eng, 4096, 64)
	q, err := NewNVMeQueuePair(mm, 16)
	if err != nil {
		t.Fatal(err)
	}
	q.SetDeviceAddrs(uint64(q.SQPA()), uint64(q.CQPA()))

	// Three discontiguous source frames with distinct contents.
	var srcs []mem.PFN
	for i := 0; i < 3; i++ {
		f, _ := mm.AllocFrame()
		if _, err := mm.AllocFrame(); err != nil { // hole for discontiguity
			t.Fatal(err)
		}
		if err := mm.Write(f.PA(), bytes.Repeat([]byte{byte('x' + i)}, 4096)); err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, f)
	}
	// PRP list page.
	list, _ := mm.AllocFrame()
	for i, f := range srcs {
		if err := mm.WriteU64(list.PA()+mem.PA(i*8), uint64(f.PA())); err != nil {
			t.Fatal(err)
		}
	}
	// Write 3 pages starting at block 4 through the list.
	if _, err := q.Submit(uint64(list.PA()), 4, 3*4096, NVMeOpWrite|NVMeFlagPRPList); err != nil {
		t.Fatal(err)
	}
	if _, err := ssd.ProcessSQ(q, 1); err != nil {
		t.Fatal(err)
	}
	c, ok, _ := q.ReapCompletion(0)
	if !ok || c.Status != NVMeStatusOK {
		t.Fatalf("completion %+v ok=%v", c, ok)
	}

	// Read the 3 pages back through a second PRP list into fresh frames.
	var dsts []mem.PFN
	rlist, _ := mm.AllocFrame()
	for i := 0; i < 3; i++ {
		f, _ := mm.AllocFrame()
		dsts = append(dsts, f)
		if err := mm.WriteU64(rlist.PA()+mem.PA(i*8), uint64(f.PA())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Submit(uint64(rlist.PA()), 4, 3*4096, NVMeOpRead|NVMeFlagPRPList); err != nil {
		t.Fatal(err)
	}
	if _, err := ssd.ProcessSQ(q, 1); err != nil {
		t.Fatal(err)
	}
	c, ok, _ = q.ReapCompletion(1)
	if !ok || c.Status != NVMeStatusOK {
		t.Fatalf("read completion %+v ok=%v", c, ok)
	}
	for i := range srcs {
		want, _ := mm.Read(srcs[i].PA(), 4096)
		got, _ := mm.Read(dsts[i].PA(), 4096)
		if !bytes.Equal(got, want) {
			t.Errorf("segment %d corrupted", i)
		}
	}
}

// TestNVMePRPPartialTail: a transfer that is not a multiple of the segment
// size only touches the tail bytes of the last segment.
func TestNVMePRPPartialTail(t *testing.T) {
	mm := mustMem(t, 128*mem.PageSize)
	eng := dma.NewEngine(mm, iommu.Identity{})
	ssd := NewNVMe(bdf, eng, 4096, 16)
	q, _ := NewNVMeQueuePair(mm, 8)
	q.SetDeviceAddrs(uint64(q.SQPA()), uint64(q.CQPA()))

	f1, _ := mm.AllocFrame()
	f2, _ := mm.AllocFrame()
	if err := mm.Write(f1.PA(), bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := mm.Write(f2.PA(), bytes.Repeat([]byte{2}, 4096)); err != nil {
		t.Fatal(err)
	}
	list, _ := mm.AllocFrame()
	_ = mm.WriteU64(list.PA(), uint64(f1.PA()))
	_ = mm.WriteU64(list.PA()+8, uint64(f2.PA()))

	if _, err := q.Submit(uint64(list.PA()), 0, 4096+100, NVMeOpWrite|NVMeFlagPRPList); err != nil {
		t.Fatal(err)
	}
	if _, err := ssd.ProcessSQ(q, 1); err != nil {
		t.Fatal(err)
	}
	c, ok, _ := q.ReapCompletion(0)
	if !ok || c.Status != NVMeStatusOK {
		t.Fatalf("completion %+v", c)
	}
	// Read back block 0 (full) and verify only 100 bytes of block 1 wrote.
	out, _ := mm.AllocFrame()
	if _, err := q.Submit(uint64(out.PA()), 1, 4096, NVMeOpRead); err != nil {
		t.Fatal(err)
	}
	if _, err := ssd.ProcessSQ(q, 1); err != nil {
		t.Fatal(err)
	}
	got, _ := mm.Read(out.PA(), 4096)
	if !bytes.Equal(got[:100], bytes.Repeat([]byte{2}, 100)) {
		t.Error("tail bytes missing")
	}
	for _, b := range got[100:] {
		if b != 0 {
			t.Error("write past transfer length")
			break
		}
	}
}

// TestNVMePRPFaulting: a PRP entry pointing at an untranslatable address
// fails the whole command with a fault status.
func TestNVMePRPFaulting(t *testing.T) {
	mm := mustMem(t, 128*mem.PageSize)
	eng := dma.NewEngine(mm, iommu.Identity{})
	ssd := NewNVMe(bdf, eng, 4096, 16)
	q, _ := NewNVMeQueuePair(mm, 8)
	q.SetDeviceAddrs(uint64(q.SQPA()), uint64(q.CQPA()))

	list, _ := mm.AllocFrame()
	_ = mm.WriteU64(list.PA(), uint64(mm.Size())+mem.PageSize) // out of range
	if _, err := q.Submit(uint64(list.PA()), 0, 4096, NVMeOpRead|NVMeFlagPRPList); err != nil {
		t.Fatal(err)
	}
	if _, err := ssd.ProcessSQ(q, 1); err != nil {
		t.Fatal(err)
	}
	c, ok, _ := q.ReapCompletion(0)
	if !ok || c.Status != NVMeStatusFault {
		t.Fatalf("completion %+v, want fault", c)
	}
	if ssd.Faults == 0 {
		t.Error("fault not counted")
	}
}
