// Package device implements the simulated I/O devices of the evaluation:
//
//   - NIC: a ring-based network controller with two calibrated profiles —
//     mlx (ConnectX3-like: 40 Gbps, two target buffers per packet) and brcm
//     (BCM57810-like: 10 Gbps, one buffer per packet) — matching §5.1's
//     observation that the two drivers differ exactly this way.
//   - NVMe: a queue-pair PCIe SSD controller per the NVM Express model the
//     paper cites (§4): up to 64K queues of up to 64K commands, consumed in
//     order — the property that makes rIOMMU applicable to PCIe SSDs.
//   - SATA: an AHCI-style disk with a single 32-slot queue processed in
//     arbitrary order — the device class rIOMMU deliberately does not cover.
//
// Devices access memory exclusively through a dma.Engine, so every
// descriptor fetch and buffer transfer is translated (and can fault).
package device

import (
	"fmt"

	"riommu/internal/dma"
	"riommu/internal/pci"
	"riommu/internal/ring"
)

// NICProfile captures the per-NIC characteristics the paper identifies as
// performance-relevant (§5.1): line rate, buffers (and hence IOVAs) per
// packet, and ring provisioning (mlx allocates ~12K IOVAs, brcm ~3K).
type NICProfile struct {
	Name             string
	LineRateGbps     float64
	BuffersPerPacket int // mlx: 2 (header + data); brcm: 1
	HeaderBytes      int // size of the header buffer when split
	RxEntries        uint32
	TxEntries        uint32
	MTU              int

	// CostScale scales the per-operation driver/hardware cycle costs for
	// this setup (cycles.Model.Scaled): the brcm machine (Linux 3.11,
	// different chipset) showed roughly half the per-op costs of the mlx
	// machine, per the CPU ratios of Table 2.
	CostScale float64

	// BufferBytes is the target-buffer size the driver allocates (0 means
	// the driver default of 2 KiB, two buffers per page).
	BufferBytes uint32
}

// ProfileMLX models the Mellanox ConnectX3 40 Gbps setup.
var ProfileMLX = NICProfile{
	Name:             "mlx",
	LineRateGbps:     40,
	BuffersPerPacket: 2,
	HeaderBytes:      128,
	RxEntries:        8192, // the mlx driver keeps ~12K IOVAs live (§5.1)
	TxEntries:        4096,
	MTU:              1500,
	CostScale:        1.0,
}

// ProfileBRCM models the Broadcom BCM57810 10 GbE setup.
var ProfileBRCM = NICProfile{
	Name:             "brcm",
	LineRateGbps:     10,
	BuffersPerPacket: 1,
	HeaderBytes:      0,
	RxEntries:        1024, // ~3K IOVAs observed in total (§5.1)
	TxEntries:        2048,
	MTU:              1500,
	CostScale:        0.5,
}

// IRQLine is the device's interrupt pin-pair: the NIC raises Rx/Tx
// completion interrupts through it when work completes. A nil line means
// interrupts are not modeled (legacy polling configurations) and raising is
// a no-op, so wiring interrupts is strictly opt-in.
type IRQLine interface {
	RaiseRx()
	RaiseTx()
}

// NIC is the device-side model: it consumes Tx descriptors in ring order,
// fetching packet payloads by DMA, and deposits received packets into the
// posted Rx buffers in ring order.
type NIC struct {
	Profile NICProfile

	// IRQ, when non-nil, receives a completion raise per transmitted burst
	// and per delivered packet.
	IRQ IRQLine

	bdf pci.BDF
	eng *dma.Engine
	rx  *ring.Ring
	tx  *ring.Ring

	// Statistics.
	TxPackets, TxBytes uint64
	RxPackets, RxBytes uint64
	Faults             uint64

	// CaptureTx retains the payload of the most recently transmitted packet
	// in LastTx for end-to-end verification in tests.
	CaptureTx bool
	LastTx    []byte

	// txScratch is the reusable DMA target for Tx payload fetches, so the
	// per-packet path allocates nothing. Its contents never outlive one
	// descriptor's processing (CaptureTx copies out via append).
	txScratch []byte
}

// NewNIC binds a NIC model to its rings and DMA engine. The rings are the
// same objects the driver manages; the device reads them through DMA at
// their device-visible addresses.
func NewNIC(profile NICProfile, bdf pci.BDF, eng *dma.Engine, rx, tx *ring.Ring) *NIC {
	return &NIC{Profile: profile, bdf: bdf, eng: eng, rx: rx, tx: tx}
}

// BDF returns the device's PCI identity.
func (n *NIC) BDF() pci.BDF { return n.bdf }

// readDescriptor fetches the descriptor at the ring head via DMA. A fault
// injector may flip a bit in the fetched words (a flaky device's descriptor
// parser), which typically surfaces later as an I/O page fault on the
// corrupted buffer address.
func (n *NIC) readDescriptor(r *ring.Ring, slot uint32) (ring.Descriptor, error) {
	addr := r.DeviceSlotAddr(slot)
	w0, err := n.eng.ReadU64(n.bdf, addr)
	if err != nil {
		return ring.Descriptor{}, err
	}
	w1, err := n.eng.ReadU64(n.bdf, addr+8)
	if err != nil {
		return ring.Descriptor{}, err
	}
	n.eng.Faults().FlipDescriptor(n.bdf, addr, &w0, &w1)
	return ring.DecodeWords(w0, w1), nil
}

// ResetDevice models a device-level reset: statistics that drive watchdog
// progress detection are preserved, but a hang injected by the fault engine
// is cleared. Drivers call it from their Recover path.
func (n *NIC) ResetDevice() { n.eng.Faults().ClearHang(n.bdf) }

// writeDescriptorStatus publishes a completed descriptor back via DMA.
func (n *NIC) writeDescriptorStatus(r *ring.Ring, slot uint32, d ring.Descriptor) error {
	w0, w1 := ring.EncodeWords(d)
	addr := r.DeviceSlotAddr(slot)
	if err := n.eng.WriteU64(n.bdf, addr, w0); err != nil {
		return err
	}
	return n.eng.WriteU64(n.bdf, addr+8, w1)
}

// ProcessTx consumes up to maxPackets transmit packets from the Tx ring
// (each packet spans Profile.BuffersPerPacket descriptors), fetching their
// payloads by DMA and marking the descriptors done. It returns the number
// of whole packets transmitted. A translation fault marks the descriptor
// with FlagError and stops processing — the OS would reinitialize the
// device on the corresponding I/O page fault (§4).
func (n *NIC) ProcessTx(maxPackets int) (int, error) {
	if n.eng.Faults().HangCheck(n.bdf) {
		return 0, nil // wedged: silently stops consuming work (watchdog territory)
	}
	sent := 0
	for sent < maxPackets && n.tx.Pending() > 0 {
		// Peek the head descriptor: an inline descriptor is a whole packet
		// by itself; otherwise a packet spans BuffersPerPacket descriptors.
		head, err := n.readDescriptor(n.tx, n.tx.Head())
		if err != nil {
			n.Faults++
			return sent, fmt.Errorf("device %s: tx descriptor fetch: %w", n.Profile.Name, err)
		}
		descs := n.Profile.BuffersPerPacket
		if head.Flags&ring.FlagInline != 0 {
			descs = 1
		}
		if int(n.tx.Pending()) < descs {
			break // partial packet posted; wait for the rest
		}
		var pkt []byte
		for b := 0; b < descs; b++ {
			slot := n.tx.Head()
			d, err := n.readDescriptor(n.tx, slot)
			if err != nil {
				n.Faults++
				return sent, fmt.Errorf("device %s: tx descriptor fetch: %w", n.Profile.Name, err)
			}
			if d.Flags&ring.FlagReady == 0 {
				return sent, fmt.Errorf("device %s: tx slot %d not ready", n.Profile.Name, slot)
			}
			if d.Flags&ring.FlagInline != 0 {
				// Payload bytes are packed into the Addr field; no DMA.
				if n.CaptureTx {
					for i := uint32(0); i < d.Len && i < 8; i++ {
						pkt = append(pkt, byte(d.Addr>>(8*i)))
					}
				}
			} else {
				if uint32(cap(n.txScratch)) < d.Len {
					n.txScratch = make([]byte, d.Len)
				}
				buf := n.txScratch[:d.Len]
				if err := n.eng.Read(n.bdf, d.Addr, buf); err != nil {
					n.Faults++
					d.Flags |= ring.FlagDone | ring.FlagError
					_ = n.writeDescriptorStatus(n.tx, slot, d)
					_ = n.tx.AdvanceHead()
					return sent, fmt.Errorf("device %s: tx buffer DMA: %w", n.Profile.Name, err)
				}
				if n.CaptureTx {
					pkt = append(pkt, buf...)
				}
			}
			d.Flags |= ring.FlagDone
			if err := n.writeDescriptorStatus(n.tx, slot, d); err != nil {
				n.Faults++
				return sent, err
			}
			if err := n.tx.AdvanceHead(); err != nil {
				return sent, err
			}
			n.TxBytes += uint64(d.Len)
		}
		if n.CaptureTx {
			n.LastTx = pkt
		}
		n.TxPackets++
		sent++
	}
	if sent > 0 && n.IRQ != nil {
		n.IRQ.RaiseTx()
	}
	return sent, nil
}

// DeliverPacket deposits a received packet into the next posted Rx
// buffer(s): the header into the first descriptor's buffer (when the
// profile splits packets) and the remainder into the second.
func (n *NIC) DeliverPacket(data []byte) error {
	if n.eng.Faults().HangCheck(n.bdf) {
		return fmt.Errorf("device %s: hung, dropping rx packet", n.Profile.Name)
	}
	if int(n.rx.Pending()) < n.Profile.BuffersPerPacket {
		return fmt.Errorf("device %s: rx ring underrun", n.Profile.Name)
	}
	pieces := n.splitPacket(data)
	for _, piece := range pieces {
		slot := n.rx.Head()
		d, err := n.readDescriptor(n.rx, slot)
		if err != nil {
			n.Faults++
			return fmt.Errorf("device %s: rx descriptor fetch: %w", n.Profile.Name, err)
		}
		if d.Flags&ring.FlagReady == 0 {
			return fmt.Errorf("device %s: rx slot %d not ready", n.Profile.Name, slot)
		}
		if len(piece) > int(d.Len) {
			return fmt.Errorf("device %s: rx buffer too small (%d > %d)", n.Profile.Name, len(piece), d.Len)
		}
		if len(piece) > 0 {
			if err := n.eng.Write(n.bdf, d.Addr, piece); err != nil {
				n.Faults++
				d.Flags |= ring.FlagDone | ring.FlagError
				_ = n.writeDescriptorStatus(n.rx, slot, d)
				_ = n.rx.AdvanceHead()
				return fmt.Errorf("device %s: rx buffer DMA: %w", n.Profile.Name, err)
			}
		}
		d.Len = uint32(len(piece))
		d.Flags |= ring.FlagDone
		if err := n.writeDescriptorStatus(n.rx, slot, d); err != nil {
			n.Faults++
			return err
		}
		if err := n.rx.AdvanceHead(); err != nil {
			return err
		}
		n.RxBytes += uint64(len(piece))
	}
	n.RxPackets++
	if n.IRQ != nil {
		n.IRQ.RaiseRx()
	}
	return nil
}

// splitPacket divides a packet across the profile's per-packet buffers.
func (n *NIC) splitPacket(data []byte) [][]byte {
	if n.Profile.BuffersPerPacket < 2 {
		return [][]byte{data}
	}
	h := n.Profile.HeaderBytes
	if h > len(data) {
		h = len(data)
	}
	return [][]byte{data[:h], data[h:]}
}
