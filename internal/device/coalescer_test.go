package device

import "testing"

func TestCoalescerCountTrigger(t *testing.T) {
	c := NewCoalescer(4, 0)
	for i := 0; i < 3; i++ {
		if c.Event(uint64(i)) {
			t.Fatalf("fired after %d events", i+1)
		}
	}
	if !c.Event(3) {
		t.Fatal("did not fire at MaxEvents")
	}
	if c.Pending() != 0 {
		t.Error("pending not reset after fire")
	}
	if c.Interrupts != 1 || c.Events != 4 {
		t.Errorf("stats: %d interrupts, %d events", c.Interrupts, c.Events)
	}
	// The cycle repeats.
	for i := 0; i < 3; i++ {
		if c.Event(uint64(10 + i)) {
			t.Fatal("premature fire on second round")
		}
	}
	if !c.Event(13) {
		t.Fatal("second round did not fire")
	}
}

func TestCoalescerTimeoutTrigger(t *testing.T) {
	c := NewCoalescer(100, 500)
	if c.Event(0) {
		t.Fatal("fired immediately")
	}
	if c.Poll(499) {
		t.Fatal("fired before timeout")
	}
	if !c.Poll(500) {
		t.Fatal("did not fire at timeout")
	}
	// Timeout is measured from the OLDEST pending event.
	if c.Event(1000) {
		t.Fatal("fresh event fired")
	}
	if c.Event(1600) { // second event arrives late; oldest is at 1000
		// 1600-1000 >= 500: fires on the event itself.
	} else {
		t.Fatal("timeout measured from wrong event")
	}
}

func TestCoalescerPollEmpty(t *testing.T) {
	c := NewCoalescer(1, 1)
	if c.Poll(1 << 40) {
		t.Error("empty coalescer fired")
	}
}

func TestCoalescerHighRateBursts(t *testing.T) {
	// At high event rates the count trigger dominates and interrupts are
	// 1/MaxEvents of completions — the amortization the paper relies on.
	c := NewCoalescer(32, 100000)
	for i := 0; i < 3200; i++ {
		c.Event(uint64(i)) // one event per cycle: very high rate
	}
	if c.Interrupts != 100 {
		t.Errorf("interrupts = %d, want 100 (3200/32)", c.Interrupts)
	}
	// At low rates the timeout dominates and every event gets service
	// within MaxWaitCycles.
	c = NewCoalescer(32, 100)
	fired := 0
	for i := 0; i < 10; i++ {
		now := uint64(i * 1000) // sparse events
		c.Event(now)
		if c.Poll(now + 100) {
			fired++
		}
	}
	if fired != 10 {
		t.Errorf("low-rate fires = %d, want 10 (latency bound)", fired)
	}
}
