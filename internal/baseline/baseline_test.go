package baseline

import (
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/iommu"
	"riommu/internal/mem"
	"riommu/internal/pagetable"
	"riommu/internal/pci"
)

var dev = pci.NewBDF(0, 3, 0)

func setup(t *testing.T, mode Mode) (*Driver, *iommu.IOMMU, *mem.PhysMem, *cycles.Clock) {
	t.Helper()
	mm := mustMem(t, 4096*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hier, err := pagetable.NewHierarchy(mm)
	if err != nil {
		t.Fatal(err)
	}
	hw := iommu.New(clk, &model, hier, 0)
	d, err := New(mode, clk, &model, mm, hw, dev, false)
	if err != nil {
		t.Fatal(err)
	}
	return d, hw, mm, clk
}

func allocBuffer(t *testing.T, mm *mem.PhysMem) mem.PA {
	t.Helper()
	f, err := mm.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	return f.PA()
}

func TestMapTranslateUnmap(t *testing.T) {
	d, hw, mm, _ := setup(t, Strict)
	pa := allocBuffer(t, mm) + 256 // unaligned buffer

	iovaAddr, err := d.Map(0, pa, 1500, pci.DirFromDevice)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if iovaAddr&mem.PageMask != 256 {
		t.Errorf("IOVA page offset = %#x, want 0x100 (preserved)", iovaAddr&mem.PageMask)
	}
	got, err := hw.Translate(dev, iovaAddr, 1500, pci.DirFromDevice)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if got != pa {
		t.Errorf("Translate = %#x, want %#x", got, pa)
	}
	// Second translation hits the IOTLB.
	if _, err := hw.Translate(dev, iovaAddr, 1500, pci.DirFromDevice); err != nil {
		t.Fatal(err)
	}
	s := hw.TLB().Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("IOTLB stats = %+v, want 1 hit / 1 miss", s)
	}

	if err := d.Unmap(0, iovaAddr, 1500, true); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if _, err := hw.Translate(dev, iovaAddr, 1500, pci.DirFromDevice); err == nil {
		t.Fatal("strict mode: translation after unmap must fault")
	}
	if d.Live() != 0 {
		t.Errorf("Live = %d", d.Live())
	}
}

func TestMapPinsBuffer(t *testing.T) {
	d, _, mm, _ := setup(t, Strict)
	pa := allocBuffer(t, mm)

	iovaAddr, err := d.Map(0, pa, 100, pci.DirToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if !mm.Pinned(pa) {
		t.Error("buffer not pinned while mapped")
	}
	if err := d.Unmap(0, iovaAddr, 100, true); err != nil {
		t.Fatal(err)
	}
	if mm.Pinned(pa) {
		t.Error("buffer still pinned after unmap")
	}
}

func TestPermissionEnforced(t *testing.T) {
	d, hw, mm, _ := setup(t, Strict)
	pa := allocBuffer(t, mm)
	iovaAddr, err := d.Map(0, pa, 64, pci.DirToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Translate(dev, iovaAddr, 64, pci.DirFromDevice); err == nil {
		t.Error("device write through a to-device-only mapping must fault")
	}
	// Also when the translation is already cached (hit path).
	if _, err := hw.Translate(dev, iovaAddr, 64, pci.DirToDevice); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Translate(dev, iovaAddr, 64, pci.DirFromDevice); err == nil {
		t.Error("cached-entry permission check missing")
	}
}

func TestMultiPageBuffer(t *testing.T) {
	d, hw, mm, _ := setup(t, Strict)
	f, err := mm.AllocFrames(2)
	if err != nil {
		t.Fatal(err)
	}
	pa := f.PA() + 3000 // spans into the second page with size 2000

	iovaAddr, err := d.Map(0, pa, 2000, pci.DirBidi)
	if err != nil {
		t.Fatal(err)
	}
	// Translate a piece on each page.
	p1, err := hw.Translate(dev, iovaAddr, 1000, pci.DirFromDevice)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := hw.Translate(dev, iovaAddr+1096+1000-1000, 64, pci.DirFromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != pa {
		t.Errorf("first piece = %#x, want %#x", p1, pa)
	}
	if p2 != pa+1096 {
		t.Errorf("second piece = %#x, want %#x", p2, pa+1096)
	}
	if err := d.Unmap(0, iovaAddr, 2000, true); err != nil {
		t.Fatal(err)
	}
	if mm.Pinned(pa) || mm.Pinned(pa+2000-1) {
		t.Error("pages still pinned")
	}
}

func TestDeferStaleWindow(t *testing.T) {
	d, hw, mm, _ := setup(t, Defer)
	pa := allocBuffer(t, mm)
	iovaAddr, err := d.Map(0, pa, 64, pci.DirFromDevice)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the IOTLB, then unmap without reaching the flush batch.
	if _, err := hw.Translate(dev, iovaAddr, 64, pci.DirFromDevice); err != nil {
		t.Fatal(err)
	}
	if err := d.Unmap(0, iovaAddr, 64, true); err != nil {
		t.Fatal(err)
	}
	// The vulnerability: the stale IOTLB entry still serves the translation.
	if _, err := hw.Translate(dev, iovaAddr, 64, pci.DirFromDevice); err != nil {
		t.Fatalf("deferred mode should expose the stale window, got fault: %v", err)
	}
	if hw.TLB().Stats().StaleLookups != 1 {
		t.Errorf("StaleLookups = %d, want 1", hw.TLB().Stats().StaleLookups)
	}
	// After the forced flush the window closes.
	if err := d.FlushPending(); err != nil {
		t.Fatalf("FlushPending: %v", err)
	}
	if _, err := hw.Translate(dev, iovaAddr, 64, pci.DirFromDevice); err == nil {
		t.Error("translation must fault after the deferred flush")
	}
}

func TestDeferBatchFlush(t *testing.T) {
	d, hw, mm, _ := setup(t, DeferPlus)
	pa := allocBuffer(t, mm)

	for i := 0; i < DeferBatch; i++ {
		iovaAddr, err := d.Map(0, pa, 64, pci.DirFromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Unmap(0, iovaAddr, 64, false); err != nil {
			t.Fatal(err)
		}
		wantPending := (i + 1) % DeferBatch
		if got := d.PendingInvalidations(); got != wantPending {
			t.Fatalf("after %d unmaps PendingInvalidations = %d, want %d", i+1, got, wantPending)
		}
	}
	if hw.TLB().Stats().GlobalFlush != 1 {
		t.Errorf("GlobalFlush = %d, want exactly 1 after %d unmaps", hw.TLB().Stats().GlobalFlush, DeferBatch)
	}
}

func TestStrictCostBreakdown(t *testing.T) {
	// The strict-mode unmap must be dominated by the IOTLB invalidation
	// (Table 1: 2,127 of ~3,000 cycles), and defer must eliminate it.
	dS, _, mmS, clkS := setup(t, Strict)
	pa := allocBuffer(t, mmS)
	iovaAddr, _ := dS.Map(0, pa, 64, pci.DirFromDevice)
	before := clkS.Snapshot()
	if err := dS.Unmap(0, iovaAddr, 64, true); err != nil {
		t.Fatal(err)
	}
	dlt := clkS.Snapshot().Sub(before)
	if got := dlt.Total(cycles.UnmapIOTLBInv); got != 2127 {
		t.Errorf("strict unmap IOTLB inv = %d cycles, want 2127", got)
	}

	dD, _, mmD, clkD := setup(t, Defer)
	pa2 := allocBuffer(t, mmD)
	iova2, _ := dD.Map(0, pa2, 64, pci.DirFromDevice)
	before = clkD.Snapshot()
	if err := dD.Unmap(0, iova2, 64, true); err != nil {
		t.Fatal(err)
	}
	dlt = clkD.Snapshot().Sub(before)
	if got := dlt.Total(cycles.UnmapIOTLBInv); got != 9 {
		t.Errorf("defer unmap IOTLB inv = %d cycles, want 9", got)
	}
}

func TestUnmapErrors(t *testing.T) {
	d, _, mm, _ := setup(t, Strict)
	if err := d.Unmap(0, 0x5000, 64, true); err == nil {
		t.Error("unmap of never-mapped IOVA should fail")
	}
	if err := d.Unmap(0, 0x5000, 0, true); err == nil {
		t.Error("unmap of zero size should fail")
	}
	pa := allocBuffer(t, mm)
	if _, err := d.Map(0, pa, 0, pci.DirBidi); err == nil {
		t.Error("map of zero size should fail")
	}
	iovaAddr, _ := d.Map(0, pa, 64, pci.DirBidi)
	if err := d.Unmap(0, iovaAddr, 64, true); err != nil {
		t.Fatal(err)
	}
	if err := d.Unmap(0, iovaAddr, 64, true); err == nil {
		t.Error("double unmap should fail")
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		Strict: "strict", StrictPlus: "strict+",
		Defer: "defer", DeferPlus: "defer+",
		Mode(9): "mode(9)",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
	if Strict.Deferred() || StrictPlus.Deferred() {
		t.Error("strict modes report Deferred")
	}
	if !Defer.Deferred() || !DeferPlus.Deferred() {
		t.Error("deferred modes do not report Deferred")
	}
}

func TestPlusModesUseConstAllocator(t *testing.T) {
	d, _, mm, clk := setup(t, StrictPlus)
	pa := allocBuffer(t, mm)
	// Warm the free list, then verify steady-state alloc cost is flat.
	v, _ := d.Map(0, pa, 64, pci.DirBidi)
	if err := d.Unmap(0, v, 64, true); err != nil {
		t.Fatal(err)
	}
	before := clk.Snapshot()
	v, _ = d.Map(0, pa, 64, pci.DirBidi)
	dlt := clk.Snapshot().Sub(before)
	model := cycles.DefaultModel()
	if got := dlt.Total(cycles.MapIOVAAlloc); got != model.FreelistOp*2 {
		t.Errorf("strict+ alloc = %d cycles, want constant %d", got, model.FreelistOp*2)
	}
	if err := d.Unmap(0, v, 64, true); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityTranslator(t *testing.T) {
	var id iommu.Identity
	pa, err := id.Translate(dev, 0x1234, 64, pci.DirFromDevice)
	if err != nil || pa != 0x1234 {
		t.Errorf("Identity.Translate = %#x, %v", pa, err)
	}
}

func TestHWptPassThrough(t *testing.T) {
	_, hw, _, _ := setup(t, Strict)
	hw.PassThrough = true
	pa, err := hw.Translate(dev, 0x9000, 64, pci.DirFromDevice)
	if err != nil || pa != 0x9000 {
		t.Errorf("HWpt Translate = %#x, %v", pa, err)
	}
	// HWpt bypasses the IOTLB entirely.
	if s := hw.TLB().Stats(); s.Hits+s.Misses != 0 {
		t.Errorf("HWpt consulted the IOTLB: %+v", s)
	}
}

func TestTranslateRejectsPageCrossing(t *testing.T) {
	_, hw, _, _ := setup(t, Strict)
	if _, err := hw.Translate(dev, 0xff0, 32, pci.DirFromDevice); err == nil {
		t.Error("page-crossing access should be rejected (DMA engine splits)")
	}
	if _, err := hw.Translate(dev, 0x1000, 0, pci.DirFromDevice); err == nil {
		t.Error("zero-size access should be rejected")
	}
}
