// Package baseline implements the OS-side baseline IOMMU driver evaluated by
// the paper: the map and unmap flows of Figures 4 and 6 under the four Linux
// protection modes of §3.2 —
//
//   - strict:  map/unmap exactly per the figures; single-entry IOTLB
//     invalidation on every unmap (completely safe).
//   - strict+: strict with the authors' constant-time IOVA allocator.
//   - defer:   IOTLB invalidations are queued and processed in bulk with one
//     global flush per 250 accumulated unmaps, trading safety (a stale-entry
//     window) for performance.
//   - defer+:  defer with the constant-time allocator.
//
// Every step charges the virtual clock with the component costs of Table 1.
package baseline

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/faults"
	"riommu/internal/iommu"
	"riommu/internal/iotlb"
	"riommu/internal/iova"
	"riommu/internal/mem"
	"riommu/internal/pagetable"
	"riommu/internal/pci"
)

// Mode selects one of the four baseline protection modes.
type Mode int

// The four Linux protection modes of §3.2.
const (
	Strict Mode = iota
	StrictPlus
	Defer
	DeferPlus
)

// String names the mode as in the paper.
func (m Mode) String() string {
	switch m {
	case Strict:
		return "strict"
	case StrictPlus:
		return "strict+"
	case Defer:
		return "defer"
	case DeferPlus:
		return "defer+"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Deferred reports whether the mode batches IOTLB invalidations.
func (m Mode) Deferred() bool { return m == Defer || m == DeferPlus }

// DeferBatch is the number of freed IOVAs Linux accumulates before flushing
// the entire IOTLB (§1, §3.2).
const DeferBatch = 250

// MapObserver mirrors successful map/unmap operations into an external
// shadow tracker; *audit.Oracle satisfies it. Defined locally so the
// dependency points from the auditor to the audited.
type MapObserver interface {
	OnMap(bdf pci.BDF, iova uint64, pa mem.PA, size uint32, dir pci.Dir)
	OnUnmap(bdf pci.BDF, iova uint64)
}

// Driver is the per-device baseline IOMMU OS driver.
type Driver struct {
	mode  Mode
	clk   *cycles.Clock
	model *cycles.Model
	mm    *mem.PhysMem
	hw    *iommu.IOMMU
	bdf   pci.BDF

	space *pagetable.Space
	alloc iova.Allocator
	invq  *iommu.InvQueue
	aud   MapObserver

	deferQ     []deferred
	deferBatch int
	live       int

	paScratch []mem.PA // Unmap's per-call page list, reused across calls
}

type deferred struct {
	iovaPFN uint64
	pages   uint64
}

// New creates a driver for the device bdf, allocating its address space and
// attaching it to the IOMMU hierarchy. coherent selects whether page-table
// updates need explicit cacheline flushes (the paper's machines: no).
func New(mode Mode, clk *cycles.Clock, model *cycles.Model, mm *mem.PhysMem, hw *iommu.IOMMU, bdf pci.BDF, coherent bool) (*Driver, error) {
	sp, err := pagetable.NewSpace(mm, clk, model, coherent)
	if err != nil {
		return nil, err
	}
	if err := hw.Hierarchy().Attach(bdf, sp); err != nil {
		return nil, err
	}
	var alloc iova.Allocator
	if mode == StrictPlus || mode == DeferPlus {
		alloc = iova.NewConst(clk, model, iova.DMA32PFN-1)
	} else {
		alloc = iova.NewLinux(clk, model, iova.DMA32PFN-1)
	}
	invq, err := iommu.NewInvQueue(mm, hw.TLB())
	if err != nil {
		return nil, err
	}
	return &Driver{
		mode:       mode,
		clk:        clk,
		model:      model,
		mm:         mm,
		hw:         hw,
		bdf:        bdf,
		space:      sp,
		alloc:      alloc,
		invq:       invq,
		deferBatch: DeferBatch,
	}, nil
}

// SetFaults threads the fault-injection engine into the driver's
// invalidation queue (dropped/delayed invalidations).
func (d *Driver) SetFaults(f *faults.Engine) { d.invq.SetFaults(f) }

// SetAudit installs a map/unmap observer (nil disables mirroring).
func (d *Driver) SetAudit(o MapObserver) { d.aud = o }

// InvQueue exposes the invalidation queue (fault-injection statistics).
func (d *Driver) InvQueue() *iommu.InvQueue { return d.invq }

// SetDeferBatch overrides the deferred-invalidation batch size (default
// 250); used by the ablation experiments to sweep the safety/performance
// trade-off.
func (d *Driver) SetDeferBatch(n int) {
	if n > 0 {
		d.deferBatch = n
	}
}

// Mode returns the driver's protection mode.
func (d *Driver) Mode() Mode { return d.mode }

// Live returns the number of currently mapped DMA buffers.
func (d *Driver) Live() int { return d.live }

// Space exposes the device's I/O address space (for tests).
func (d *Driver) Space() *pagetable.Space { return d.space }

// Allocator exposes the IOVA allocator (for pathology statistics).
func (d *Driver) Allocator() iova.Allocator { return d.alloc }

func pagesSpanned(pa mem.PA, size uint32) uint64 {
	first := uint64(pa) >> mem.PageShift
	last := (uint64(pa) + uint64(size) - 1) >> mem.PageShift
	return last - first + 1
}

// Map implements Figure 4: pin the target buffer, allocate an IOVA, insert
// the translation(s) into the page-table hierarchy, and return the IOVA the
// device driver will place in its DMA descriptor. The ring argument is
// ignored — baseline protection is per-device, not per-ring.
func (d *Driver) Map(_ int, pa mem.PA, size uint32, dir pci.Dir) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("baseline: mapping empty buffer")
	}
	pages := pagesSpanned(pa, size)
	base := mem.PA(uint64(pa) &^ uint64(mem.PageMask))
	for i := uint64(0); i < pages; i++ {
		if err := d.mm.Pin(base + mem.PA(i<<mem.PageShift)); err != nil {
			return 0, fmt.Errorf("baseline: pinning target buffer: %w", err)
		}
	}
	pfn, err := d.alloc.Alloc(pages) // charges MapIOVAAlloc
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < pages; i++ {
		frame := mem.PFNOf(base) + mem.PFN(i)
		if err := d.space.Map((pfn+i)<<mem.PageShift, frame, dir); err != nil {
			return 0, err
		}
	}
	d.clk.Charge(cycles.MapOther, d.model.MapFixed)
	d.live++
	iovaAddr := pfn<<mem.PageShift | uint64(pa)&mem.PageMask
	if d.aud != nil {
		d.aud.OnMap(d.bdf, iovaAddr, pa, size, dir)
	}
	return iovaAddr, nil
}

// Unmap implements Figure 6: remove the translation from the page tables,
// purge (or defer purging) the IOTLB entries, deallocate the IOVA, and unpin
// the buffer. endOfBurst is ignored — the baseline has no burst semantics.
func (d *Driver) Unmap(_ int, iovaAddr uint64, size uint32, _ bool) error {
	if size == 0 {
		return fmt.Errorf("baseline: unmapping empty buffer")
	}
	pages := pagesSpanned(mem.PA(iovaAddr), size)
	pfn := iovaAddr >> mem.PageShift
	if !d.alloc.Contains(pfn) {
		return fmt.Errorf("baseline: unmap of unmapped iova %#x", iovaAddr)
	}

	// (1) Remove from the page-table hierarchy; remember the physical pages
	// so the buffer can be unpinned afterwards.
	basePAs := d.paScratch[:0]
	defer func() { d.paScratch = basePAs[:0] }()
	for i := uint64(0); i < pages; i++ {
		va := (pfn + i) << mem.PageShift
		pa, _, err := d.space.Lookup(va)
		if err != nil {
			return fmt.Errorf("baseline: unmap of untranslated iova %#x: %w", va, err)
		}
		basePAs = append(basePAs, pa)
		if err := d.space.Unmap(va); err != nil {
			return err
		}
	}

	// (2) Purge the IOTLB — immediately (strict) or deferred in bulk.
	if d.mode.Deferred() {
		for i := uint64(0); i < pages; i++ {
			d.hw.TLB().MarkStale(iotlb.Key{BDF: d.bdf, IOVAPFN: pfn + i})
		}
		d.clk.Charge(cycles.UnmapIOTLBInv, d.model.DeferQueueOp)
		d.clk.Charge(cycles.UnmapOther, d.model.UnmapFixed+d.model.DeferUnmapExtra)
		d.deferQ = append(d.deferQ, deferred{iovaPFN: pfn, pages: pages})
		if len(d.deferQ) >= d.deferBatch {
			if err := d.flushDeferred(); err != nil {
				return err
			}
		}
	} else {
		// Strict: one queued-invalidation round trip per page — submit the
		// entry descriptor, then a wait descriptor, and spin (Table 1's
		// 2,127-cycle "iotlb inv" row is this submit+wait).
		for i := uint64(0); i < pages; i++ {
			if err := d.invq.SubmitEntry(d.bdf, pfn+i); err != nil {
				return err
			}
			if err := d.invq.Wait(); err != nil {
				return err
			}
			d.clk.Charge(cycles.UnmapIOTLBInv, d.model.IOTLBInvEntry)
		}
		// (3) Deallocate the IOVA (strict does it inline).
		if err := d.alloc.Free(pfn); err != nil {
			return err
		}
		d.clk.Charge(cycles.UnmapOther, d.model.UnmapFixed)
	}

	// (4) Unpin; the buffer returns to the upper software layers. In the
	// deferred modes this happens *before* the IOTLB flush — exactly the
	// vulnerability window the paper describes.
	for _, pa := range basePAs {
		if err := d.mm.Unpin(pa); err != nil {
			return err
		}
	}
	d.live--
	if d.aud != nil {
		// The mapping is dead from the OS's perspective right here — in the
		// deferred modes the IOTLB still holds it, which is exactly the
		// window the auditor measures.
		d.aud.OnUnmap(d.bdf, iovaAddr)
	}
	return nil
}

// flushDeferred processes the accumulated invalidations: one global IOTLB
// flush amortized over the batch, then the queued IOVA deallocations. Errors
// propagate to the caller (an Unmap or FlushPending); the deferred queue is
// left intact so a later flush can retry.
func (d *Driver) flushDeferred() error {
	// One queued global flush for the whole batch. Table 1 attributes the
	// amortized cost to the queue-management "other" row, keeping
	// "iotlb inv" at the pure 9-cycle queue insert.
	if err := d.invq.SubmitGlobal(); err != nil {
		return fmt.Errorf("baseline: deferred flush: %w", err)
	}
	if err := d.invq.Wait(); err != nil {
		return fmt.Errorf("baseline: deferred flush: %w", err)
	}
	d.clk.ChargeFree(cycles.UnmapOther, d.model.IOTLBGlobalFlush)
	for _, q := range d.deferQ {
		if err := d.alloc.Free(q.iovaPFN); err != nil {
			return fmt.Errorf("baseline: deferred free: %w", err)
		}
	}
	d.deferQ = d.deferQ[:0]
	return nil
}

// FlushPending forces the deferred queue to drain (device teardown).
func (d *Driver) FlushPending() error {
	if len(d.deferQ) > 0 {
		return d.flushDeferred()
	}
	return nil
}

// PendingInvalidations returns the deferred-queue depth (tests).
func (d *Driver) PendingInvalidations() int { return len(d.deferQ) }
