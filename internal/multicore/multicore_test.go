package multicore

import (
	"reflect"
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/sim"
)

func TestLockUncontendedChargesAcquireOnly(t *testing.T) {
	clk := &cycles.Clock{}
	l := NewLock(LockParams{AcquireCycles: 40, BackoffBase: 50, BackoffMax: 3200})
	l.Acquire(clk)
	if got := clk.Now(); got != 40 {
		t.Fatalf("uncontended acquire charged %d cycles, want 40", got)
	}
	clk.Charge(cycles.MapOther, 100)
	l.Release(clk)
	if l.Stats.Contended != 0 || l.Stats.WaitCycles != 0 {
		t.Fatalf("uncontended acquire recorded contention: %+v", l.Stats)
	}
	if l.Stats.HeldCycles != 100 {
		t.Fatalf("held cycles = %d, want 100", l.Stats.HeldCycles)
	}
}

func TestLockContendedSpinsPastRelease(t *testing.T) {
	a, b := &cycles.Clock{}, &cycles.Clock{}
	l := NewLock(LockParams{AcquireCycles: 10, BackoffBase: 16, BackoffMax: 64})

	// Core A holds the lock from t=10 to t=1010.
	l.Acquire(a)
	a.Charge(cycles.MapOther, 1000)
	l.Release(a)

	// Core B, still at t=0, must spin past A's release at t=1010.
	l.Acquire(b)
	if b.Now() < 1010 {
		t.Fatalf("contended acquirer's clock %d did not pass release point 1010", b.Now())
	}
	if l.Stats.Contended != 1 || l.Stats.WaitCycles == 0 {
		t.Fatalf("contention not recorded: %+v", l.Stats)
	}
	// Exponential backoff overshoots by less than one max spin.
	if over := b.Now() - 1010; over >= 64 {
		t.Fatalf("backoff overshoot %d >= BackoffMax", over)
	}
}

func TestLockBackoffCapped(t *testing.T) {
	a, b := &cycles.Clock{}, &cycles.Clock{}
	l := NewLock(LockParams{AcquireCycles: 1, BackoffBase: 2, BackoffMax: 8})
	l.Acquire(a)
	a.Charge(cycles.MapOther, 100000)
	l.Release(a)
	l.Acquire(b)
	// Spins: 2,4,8,8,8,... — waited total must reach past 100001.
	if b.Now() < 100001 {
		t.Fatalf("clock %d short of release point", b.Now())
	}
	if over := b.Now() - 100001; over >= 8 {
		t.Fatalf("capped backoff overshoot %d >= cap 8", over)
	}
}

func TestContendedModeClassification(t *testing.T) {
	want := map[sim.Mode]bool{
		sim.Strict: true, sim.StrictPlus: true, sim.Defer: true, sim.DeferPlus: true,
		sim.RIOMMUMinus: false, sim.RIOMMU: false, sim.None: false,
	}
	for m, w := range want {
		if got := ContendedMode(m); got != w {
			t.Errorf("ContendedMode(%s) = %v, want %v", m, got, w)
		}
	}
}

func quickParams(m sim.Mode, cores int) Params {
	return Params{
		Mode:           m,
		Profile:        device.ProfileMLX,
		Cores:          cores,
		PacketsPerCore: 160,
		WarmupPerCore:  60,
	}
}

// TestRunDeterministic pins the engine's core property: two identical runs
// produce identical results, bit for bit.
func TestRunDeterministic(t *testing.T) {
	for _, m := range []sim.Mode{sim.Strict, sim.Defer, sim.RIOMMU} {
		a, err := Run(quickParams(m, 4))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		b, err := Run(quickParams(m, 4))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two identical runs diverged:\n%+v\n%+v", m, a, b)
		}
	}
}

// TestRIOMMUScalesOverStrict is the PR's headline acceptance criterion:
// under default contention costs on the mlx profile, rIOMMU's aggregate
// throughput at 8 cores is at least 3x strict's.
func TestRIOMMUScalesOverStrict(t *testing.T) {
	strict, err := Run(quickParams(sim.Strict, 8))
	if err != nil {
		t.Fatal(err)
	}
	riommu, err := Run(quickParams(sim.RIOMMU, 8))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("8-core mlx: strict=%.2f Gbps (lock: %d contended, %d wait cyc), riommu=%.2f Gbps",
		strict.AggGbps, strict.Lock.Contended, strict.Lock.WaitCycles, riommu.AggGbps)
	if riommu.AggGbps < 3*strict.AggGbps {
		t.Fatalf("riommu %.2f Gbps < 3x strict %.2f Gbps at 8 cores", riommu.AggGbps, strict.AggGbps)
	}
	if strict.Lock.Contended == 0 {
		t.Fatal("8-core strict run saw no lock contention — the model is not engaging")
	}
	if riommu.Lock.Acquisitions != 0 {
		t.Fatal("riommu run took the shared lock — rIOMMU paths must stay lock-free")
	}
}

// TestStrictFlattens checks the qualitative §2.3 curve: strict's aggregate
// throughput stops improving with cores, while riommu's grows near-linearly
// until it hits line rate.
func TestStrictFlattens(t *testing.T) {
	agg := func(m sim.Mode, cores int) float64 {
		r, err := Run(quickParams(m, cores))
		if err != nil {
			t.Fatalf("%s/%d: %v", m, cores, err)
		}
		t.Logf("%s cores=%2d: %.2f Gbps (mean C=%.0f)", m, cores, r.AggGbps, r.MeanCyclesPerPacket)
		return r.AggGbps
	}
	s1, s8 := agg(sim.Strict, 1), agg(sim.Strict, 8)
	if s8 > 2.5*s1 {
		t.Errorf("strict scaled %.1fx from 1 to 8 cores — contention should flatten it", s8/s1)
	}
	r1, r8 := agg(sim.RIOMMU, 1), agg(sim.RIOMMU, 8)
	if r8 < 3*r1 && r8 < 0.95*device.ProfileMLX.LineRateGbps {
		t.Errorf("riommu did not scale: 1 core %.2f, 8 cores %.2f Gbps", r1, r8)
	}
}

// TestIntRemapPostedDelivery: with interrupt remapping on, the scale-out run
// posts completion interrupts into per-core timelines — deliveries happen,
// nothing is blocked, posted-format is used throughout, and the run stays
// bit-deterministic. With it off, results are bit-identical to a plain run
// (historical numbers unmoved).
func TestIntRemapPostedDelivery(t *testing.T) {
	p := quickParams(sim.RIOMMU, 4)
	p.IntRemap = true
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Int.Delivered == 0 || a.Int.PostedDeliv != a.Int.Delivered {
		t.Fatalf("posted delivery stats wrong: %+v", a.Int)
	}
	if a.Int.Blocked() != 0 || a.Int.StaleDelivered != 0 {
		t.Fatalf("clean run blocked/stale interrupts: %+v", a.Int)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("interrupt-remapped runs diverged:\n%+v\n%+v", a, b)
	}

	plain, err := Run(quickParams(sim.RIOMMU, 4))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Int.Delivered != 0 {
		t.Fatalf("plain run delivered interrupts: %+v", plain.Int)
	}
	// Interrupt dispatch costs must show up: remapped cores run slower.
	if a.MeanCyclesPerPacket <= plain.MeanCyclesPerPacket {
		t.Fatalf("interrupt dispatch cost invisible: remapped C=%.1f <= plain C=%.1f",
			a.MeanCyclesPerPacket, plain.MeanCyclesPerPacket)
	}
}

func TestRunRejectsBadCores(t *testing.T) {
	if _, err := Run(Params{Mode: sim.RIOMMU, Profile: device.ProfileMLX, Cores: 0}); err == nil {
		t.Fatal("Run accepted zero cores")
	}
}
