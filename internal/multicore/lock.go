// Package multicore is the deterministic K-core scale-out engine of the
// paper's §2.3 claim: rIOMMU scales across cores because every ring owns its
// flat table and rIOTLB entries, while the baseline modes serialize on the
// shared red-black-tree IOVA allocator and the global invalidation queue.
//
// Each simulated core drives one MQNIC queue pair on its own virtual clock.
// There is exactly one physical cycles.Clock (the one every component in the
// simulation world already points at); the scheduler multiplexes it across
// cores with Snapshot/Restore, always advancing the core whose virtual time
// is smallest. Shared OS structures are wrapped in a cycle-cost spinlock
// model: acquisition charges a fixed atomic cost, and when the lock's
// release time lies in the acquirer's future the core spins with exponential
// backoff until its own clock passes the release point — the discrete-event
// analogue of K cores hammering one spinlock. rIOMMU's per-ring paths take
// no lock at all, exactly as in the paper.
package multicore

import (
	"riommu/internal/cycles"
	"riommu/internal/driver"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// LockParams calibrates the contention cycle model. All costs are in CPU
// cycles on the acquiring core's clock.
type LockParams struct {
	// AcquireCycles is the uncontended cost of one acquire/release pair:
	// the locked atomic plus the release store. Charged on every acquire.
	AcquireCycles uint64
	// BackoffBase is the first spin's length when the lock is found held.
	// Each subsequent spin doubles, up to BackoffMax (test-and-test-and-set
	// with exponential backoff).
	BackoffBase uint64
	// BackoffMax caps the spin length.
	BackoffMax uint64
}

// DefaultLockParams models a cross-core spinlock on the paper's Sandy Bridge
// setup: ~40 cycles for the contended-cacheline atomic, backoff spins from
// 50 cycles doubling to a 3,200-cycle cap.
func DefaultLockParams() LockParams {
	return LockParams{AcquireCycles: 40, BackoffBase: 50, BackoffMax: 3200}
}

// LockStats aggregates what the lock observed over a run.
type LockStats struct {
	Acquisitions uint64 // total acquires
	Contended    uint64 // acquires that found the lock held
	WaitCycles   uint64 // cycles burned spinning (backoff overshoot included)
	HeldCycles   uint64 // cycles spent inside critical sections
}

// Lock is the deterministic spinlock cost model. It holds no goroutine
// state — "held" means the owner's release lies in the acquirer's virtual
// future. The zero value is unusable; use NewLock.
type Lock struct {
	p        LockParams
	freeAt   uint64 // virtual time of the last release
	heldFrom uint64
	Stats    LockStats
}

// NewLock builds a lock, substituting defaults for zero-valued parameters.
func NewLock(p LockParams) *Lock {
	d := DefaultLockParams()
	if p.AcquireCycles == 0 {
		p.AcquireCycles = d.AcquireCycles
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = d.BackoffBase
	}
	if p.BackoffMax < p.BackoffBase {
		p.BackoffMax = p.BackoffBase
	}
	return &Lock{p: p}
}

// Acquire charges the acquiring core's clock for taking the lock: the fixed
// atomic cost, plus exponential-backoff spins while another core's critical
// section still occupies the lock in virtual time. On return the core owns
// the lock at its (possibly advanced) current time.
func (l *Lock) Acquire(clk *cycles.Clock) {
	l.Stats.Acquisitions++
	clk.Charge(cycles.LockContention, l.p.AcquireCycles)
	if clk.Now() < l.freeAt {
		l.Stats.Contended++
		spin := l.p.BackoffBase
		for clk.Now() < l.freeAt {
			clk.ChargeFree(cycles.LockContention, spin)
			l.Stats.WaitCycles += spin
			if spin < l.p.BackoffMax {
				spin *= 2
				if spin > l.p.BackoffMax {
					spin = l.p.BackoffMax
				}
			}
		}
	}
	l.heldFrom = clk.Now()
}

// ResetStats zeroes the tally and forgets the last release point; the
// engine calls it between warmup and the measured phase, when every core's
// virtual clock restarts from zero.
func (l *Lock) ResetStats() {
	l.Stats = LockStats{}
	l.freeAt = 0
	l.heldFrom = 0
}

// Release marks the critical section over at the releasing core's current
// time; later acquirers whose clocks trail this point will spin.
func (l *Lock) Release(clk *cycles.Clock) {
	now := clk.Now()
	l.Stats.HeldCycles += now - l.heldFrom
	if now > l.freeAt {
		l.freeAt = now
	}
}

// ContendedProtection wraps a shared driver.Protection (the baseline modes'
// one-per-device driver: rbtree/const IOVA allocator + invalidation queue)
// in the lock model. Every Map and Unmap runs under the domain lock, the
// same spinlock Linux's intel-iommu driver takes around IOVA allocation and
// invalidation-queue submission.
//
// rIOMMU protections are deliberately never wrapped: each ring's tail
// pointer, flat table and rIOTLB entries are owned by exactly one core
// (§2.3), so its map/unmap path is lock-free.
type ContendedProtection struct {
	inner driver.Protection
	lock  *Lock
	clk   *cycles.Clock
}

// Contend wraps prot so every Map/Unmap charges lock acquisition (and any
// contention backoff) on clk before running the underlying operation.
func Contend(prot driver.Protection, lock *Lock, clk *cycles.Clock) *ContendedProtection {
	return &ContendedProtection{inner: prot, lock: lock, clk: clk}
}

// Map acquires the domain lock, maps through the shared driver, releases.
func (c *ContendedProtection) Map(ring int, pa mem.PA, size uint32, dir pci.Dir) (uint64, error) {
	c.lock.Acquire(c.clk)
	defer c.lock.Release(c.clk)
	return c.inner.Map(ring, pa, size, dir)
}

// Unmap acquires the domain lock, unmaps through the shared driver (strict
// modes wait out the invalidation round trip inside the critical section,
// which is what flattens their scaling curve), releases.
func (c *ContendedProtection) Unmap(ring int, iova uint64, size uint32, endOfBurst bool) error {
	c.lock.Acquire(c.clk)
	defer c.lock.Release(c.clk)
	return c.inner.Unmap(ring, iova, size, endOfBurst)
}
