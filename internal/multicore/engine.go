package multicore

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/intremap"
	"riommu/internal/netstack"
	"riommu/internal/pci"
	"riommu/internal/perfmodel"
	"riommu/internal/sim"
)

// Params configures one K-core scale-out run.
type Params struct {
	Mode    sim.Mode
	Profile device.NICProfile
	// Cores is the number of simulated cores; core i exclusively drives
	// MQNIC queue pair i.
	Cores int
	// PacketsPerCore is the measured packet count each core transmits
	// (default 400); WarmupPerCore packets run first and are discarded
	// (default 120).
	PacketsPerCore int
	WarmupPerCore  int
	// MemPages sizes the simulated physical memory (default 1<<15 pages =
	// 128 MiB).
	MemPages uint64
	// Lock calibrates the shared-structure contention model; zero fields
	// take DefaultLockParams. The lock wraps the baseline modes' shared
	// protection driver only — rIOMMU and none run lock-free.
	Lock LockParams
	// IntRemap models MSI-X completion interrupts: queue i's vectors are
	// remapped (posted-format) to core i, and each delivery's dispatch cost
	// lands on the receiving core's virtual timeline. Off by default, which
	// keeps historical scale-out numbers bit-identical.
	IntRemap bool
}

// CoreResult is one core's measured steady state.
type CoreResult struct {
	Packets         uint64
	Cycles          uint64
	CyclesPerPacket float64
	// GbpsSolo is the core's uncapped solo throughput under the §3.3 model.
	GbpsSolo float64
}

// Result aggregates a scale-out run.
type Result struct {
	PerCore []CoreResult
	// AggGbps is the port throughput: the sum of per-core §3.3 packet rates
	// capped at the profile's line rate.
	AggGbps float64
	// AggPktsPerSec is the same sum in packets/second (uncapped).
	AggPktsPerSec float64
	// MeanCyclesPerPacket averages C over the cores.
	MeanCyclesPerPacket float64
	// Lock is the shared-structure lock's tally (zero for lock-free modes).
	Lock LockStats
	// Int is the interrupt remapper's tally (zero unless Params.IntRemap).
	Int intremap.Stats
}

// ContendedMode reports whether the mode serializes map/unmap on shared OS
// structures (the rbtree/const IOVA allocator and the invalidation queue) —
// i.e. whether the scale-out engine wraps its protection in the lock model.
func ContendedMode(m sim.Mode) bool {
	switch m {
	case sim.Strict, sim.StrictPlus, sim.Defer, sim.DeferPlus:
		return true
	default:
		return false
	}
}

// queueProfile derives the per-queue ring provisioning: the port's rings are
// divided across the queue pairs (floor 64 entries), mirroring how mlx5-era
// drivers size per-channel rings.
func queueProfile(p device.NICProfile, cores int) device.NICProfile {
	q := p
	if n := p.RxEntries / uint32(cores); n >= 64 {
		q.RxEntries = n
	} else {
		q.RxEntries = 64
	}
	if n := p.TxEntries / uint32(cores); n >= 64 {
		q.TxEntries = n
	} else {
		q.TxEntries = 64
	}
	return q
}

// connParams adapts the netstack cost model to the per-queue ring size: the
// Tx completion burst cannot exceed what the smaller ring can hold in
// flight.
func connParams(qp device.NICProfile) netstack.Params {
	p := netstack.DefaultParams(qp)
	if maxInFlight := int(qp.TxEntries) / qp.BuffersPerPacket / 2; p.TxBurst > maxInFlight {
		p.TxBurst = maxInFlight
	}
	return p
}

var mqBDF = pci.NewBDF(0, 3, 0)

// Run executes one deterministic scale-out measurement: K cores, each with
// its own virtual clock and MQNIC queue pair, scheduled lowest-virtual-time
// first at per-packet granularity. The single physical clock every simulated
// component charges is multiplexed across cores via Snapshot/Restore, so the
// whole run stays single-threaded and bit-reproducible.
func Run(p Params) (Result, error) {
	if p.Cores <= 0 {
		return Result{}, fmt.Errorf("multicore: cores must be positive, got %d", p.Cores)
	}
	if p.PacketsPerCore <= 0 {
		p.PacketsPerCore = 400
	}
	if p.WarmupPerCore <= 0 {
		p.WarmupPerCore = 120
	}
	if p.MemPages == 0 {
		p.MemPages = 1 << 15
	}

	sys, err := sim.NewSystemScaled(p.Mode, p.MemPages, p.Profile.CostScale)
	if err != nil {
		return Result{}, err
	}
	defer sys.Close()

	qp := queueProfile(p.Profile, p.Cores)
	prot, err := sys.ProtectionFor(mqBDF, driver.RIOMMURingSizesQ(qp, p.Cores))
	if err != nil {
		return Result{}, err
	}
	lock := NewLock(p.Lock)
	if ContendedMode(p.Mode) {
		prot = Contend(prot, lock, sys.CPU)
	}
	mq, err := driver.NewMQNIC(sys.Mem, prot, sys.Eng, qp, mqBDF, p.Cores)
	if err != nil {
		return Result{}, err
	}
	if p.IntRemap {
		if _, err := sys.EnableIntRemap(); err != nil {
			return Result{}, err
		}
		// Posted delivery into per-core timelines: the reap paths run under
		// the owning core's restored clock, so each dispatch charge lands
		// exactly on the core the IRTE targets.
		for i, drv := range mq.Queues {
			src, err := sys.IntRemap.NewSource(mqBDF, i, i, true)
			if err != nil {
				return Result{}, err
			}
			drv.SetIRQ(src)
		}
	}

	np := connParams(qp)
	conns := make([]*netstack.Conn, p.Cores)
	for i := range conns {
		conns[i] = netstack.NewConn(sys.CPU, mq.Queues[i], np)
	}

	// Setup charges (ring maps, Rx fill) accrued on the shared clock; wipe
	// them and give every core a zeroed private clock.
	sys.ResetClocks()
	snaps := make([]cycles.Snapshot, p.Cores)

	// schedule advances cores one packet at a time, always the core whose
	// virtual clock trails the field (ties to the lowest index), until every
	// core has sent quota packets beyond base[i].
	schedule := func(base []uint64, quota int) error {
		for {
			pick, best := -1, ^uint64(0)
			for i := range snaps {
				if conns[i].DataPackets-base[i] >= uint64(quota) {
					continue
				}
				if snaps[i].Now < best {
					pick, best = i, snaps[i].Now
				}
			}
			if pick < 0 {
				return nil
			}
			sys.CPU.Restore(snaps[pick])
			if err := conns[pick].SendPacket(np.MSS); err != nil {
				return fmt.Errorf("multicore: core %d: %w", pick, err)
			}
			snaps[pick] = sys.CPU.Snapshot()
		}
	}

	// Warmup: fill the pipelines (Tx bursts, ack coalescing, allocator
	// caches) exactly as the measured phase will run them.
	zeros := make([]uint64, p.Cores)
	if err := schedule(zeros, p.WarmupPerCore); err != nil {
		return Result{}, err
	}

	// Measured phase starts from virtual time zero on every core.
	for i := range snaps {
		snaps[i] = cycles.Snapshot{}
	}
	sys.ResetClocks()
	lock.ResetStats()
	base := make([]uint64, p.Cores)
	for i, c := range conns {
		base[i] = c.DataPackets
	}
	if err := schedule(base, p.PacketsPerCore); err != nil {
		return Result{}, err
	}
	// Drain outstanding completion bursts so trailing unmap work is billed.
	for i, c := range conns {
		sys.CPU.Restore(snaps[i])
		if err := c.Flush(); err != nil {
			return Result{}, fmt.Errorf("multicore: core %d flush: %w", i, err)
		}
		snaps[i] = sys.CPU.Snapshot()
	}

	res := Result{PerCore: make([]CoreResult, p.Cores), Lock: lock.Stats}
	if sys.IntRemap != nil {
		res.Int = sys.IntRemap.Stats()
	}
	var sumC, aggPkts float64
	for i := range snaps {
		pkts := conns[i].DataPackets - base[i]
		c := float64(snaps[i].Now) / float64(pkts)
		res.PerCore[i] = CoreResult{
			Packets:         pkts,
			Cycles:          snaps[i].Now,
			CyclesPerPacket: c,
			GbpsSolo:        perfmodel.GbpsUncapped(sys.Model, c),
		}
		sumC += c
		aggPkts += sys.Model.CyclesPerSecond() / c
	}
	res.MeanCyclesPerPacket = sumC / float64(p.Cores)
	res.AggPktsPerSec = aggPkts
	if line := perfmodel.LineRatePackets(p.Profile.LineRateGbps); aggPkts > line {
		aggPkts = line
	}
	res.AggGbps = aggPkts * perfmodel.WireBytes * 8 / 1e9
	return res, nil
}
