GO ?= go
FUZZTIME ?= 10s
BENCH_GOLDEN ?= BENCH_golden.json

.PHONY: all build test tier1 vet fmt-check race ci ci-local fuzz fuzz-smoke bench-json bench-check audit clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# tier1 is the repository's acceptance gate: everything compiles, every test
# passes.
tier1: build test

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# ci is the full static + dynamic check: vet, then the whole suite under the
# race detector.
ci: build vet race

# ci-local mirrors every gate of .github/workflows/ci.yml in one invocation.
ci-local: build vet fmt-check test race fuzz-smoke bench-check audit

# audit is the isolation gate: a quick audited chaos campaign (shadow
# translation oracle + hostile device + circuit breaker) built with the race
# detector. The command itself exits non-zero if any gap-free mode shows an
# isolation violation, while the deferred modes' stale windows are required
# to be visible (auditor liveness).
audit:
	$(GO) run -race ./cmd/riommu-faults \
		-rounds 40 -rates 0 -modes strict,riommu -chaos all > /dev/null

# A short bounded run of the fault-determinism fuzzer (the seed corpus also
# runs as part of plain `go test`).
fuzz:
	$(GO) test ./internal/sim/ -run FuzzFaultDeterminism -fuzz FuzzFaultDeterminism -fuzztime 20s

# fuzz-smoke is the CI-sized variant: long enough to execute the engine on
# generated inputs, short enough for every push.
fuzz-smoke:
	$(GO) test ./internal/sim/ -run FuzzFaultDeterminism -fuzz FuzzFaultDeterminism -fuzztime $(FUZZTIME)

# bench-json regenerates the committed benchmark golden. Run it (and commit
# the result) whenever an intentional change moves any cell metric. The
# golden is generated with -parallel 1; bench-check verifies at the default
# worker count, so the diff doubles as a full-grid serial-vs-parallel
# equivalence check.
bench-json: build
	$(GO) run ./cmd/riommu-bench -quality quick -parallel 1 -json $(BENCH_GOLDEN) > /dev/null

# bench-check is the CI benchmark-regression gate: rerun the quick grid and
# fail on any byte of drift from the committed golden.
bench-check: build
	@tmp="$$(mktemp)"; trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/riommu-bench -quality quick -json "$$tmp" > /dev/null || exit 1; \
	if ! diff -u $(BENCH_GOLDEN) "$$tmp"; then \
		echo ""; \
		echo "benchmark drift vs $(BENCH_GOLDEN)."; \
		echo "If intentional, refresh with: make bench-json && git add $(BENCH_GOLDEN)"; \
		exit 1; \
	fi; \
	echo "bench-check: no drift vs $(BENCH_GOLDEN)"

clean:
	$(GO) clean ./...
