GO ?= go

.PHONY: all build test tier1 vet race ci fuzz clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# tier1 is the repository's acceptance gate: everything compiles, every test
# passes.
tier1: build test

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# ci is the full static + dynamic check: vet, then the whole suite under the
# race detector.
ci: build vet race

# A short bounded run of the fault-determinism fuzzer (the seed corpus also
# runs as part of plain `go test`).
fuzz:
	$(GO) test ./internal/sim/ -run FuzzFaultDeterminism -fuzz FuzzFaultDeterminism -fuzztime 20s

clean:
	$(GO) clean ./...
