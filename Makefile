GO ?= go
FUZZTIME ?= 10s
BENCH_GOLDEN ?= BENCH_golden.json
BENCH_WALLCLOCK ?= BENCH_wallclock.txt
BENCH_GATE ?= BENCH_gate.json
WALLCLOCK_PATTERN ?= MapUnmap|Rtranslate|^BenchmarkWalk$$|^BenchmarkIOTLB$$|CampaignCell|EngineReadU64|TrafficCell

COVER_FLOOR ?= 78.0

.PHONY: all build test tier1 vet fmt-check race ci ci-local cover equivalence fuzz fuzz-smoke bench-json bench-check bench-wallclock bench-wallclock-baseline alloc-check grid-full grid-check profile audit hotplug tenants traffic clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# tier1 is the repository's acceptance gate: everything compiles, every test
# passes.
tier1: build test

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# ci is the full static + dynamic check: vet, then the whole suite under the
# race detector.
ci: build vet race

# ci-local mirrors every gate of .github/workflows/ci.yml in one invocation
# (grid-check stands in for the scheduled grid-full job: same byte-identity
# property, CI-sized rounds).
ci-local: build vet fmt-check test race equivalence fuzz-smoke bench-check alloc-check cover grid-check audit hotplug tenants traffic

# equivalence runs the mode-equivalence property suite under the race
# detector: every protection mode must produce byte-identical Tx/Rx payloads
# and an identical protection-boundary mapping history for a seeded
# multi-queue workload, with zero audit-oracle violations.
equivalence:
	$(GO) test -race -count=1 ./internal/check/

# cover enforces the statement-coverage floor over internal/... (run with
# -short so the slow multi-worker determinism sweeps don't dominate; they are
# gated separately by `make race`). Refresh the floor deliberately, never
# down: COVER_FLOOR=76.0 make cover.
cover:
	@$(GO) test -short -coverprofile=coverage.out ./internal/... > /dev/null
	@total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || { \
		echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# audit is the isolation gate: a quick audited chaos campaign (shadow
# translation oracle + hostile device + circuit breaker) built with the race
# detector. The command itself exits non-zero if any gap-free mode shows an
# isolation violation, while the deferred modes' stale windows are required
# to be visible (auditor liveness).
audit:
	$(GO) run -race ./cmd/riommu-faults \
		-rounds 40 -rates 0 -modes strict,riommu -chaos all > /dev/null

# hotplug is the interrupt gate: a quick hot-plug storm plus hostile-MSI
# campaign (interrupt shadow oracle + lifecycle state machine) built with the
# race detector. The command exits non-zero if a delivered interrupt is
# disowned by the shadow table, a removed device's completion is reaped, or a
# surprise removal fails to recover with a finite MTTR.
hotplug:
	$(GO) run -race ./cmd/riommu-faults \
		-rounds 24 -rates 0 -modes strict -intchaos all -hotplug all > /dev/null

# tenants is the cross-tenant gate: a quick hostile-tenant campaign (nested
# two-stage translation + per-tenant frame-ownership oracle + tenant-scoped
# circuit breakers) built with the race detector. The command exits non-zero
# if any attack crosses a tenant boundary, if the hostile tenant escapes
# quarantine, or if any victim tenant dips below 100% availability.
tenants:
	$(GO) run -race ./cmd/riommu-faults \
		-rounds 30 -rates 0 -modes strict -tenants 3 -tenantchaos all > /dev/null

# traffic is the fleet-scale churn gate: a quick Figure S2 sweep (connection
# churn x all seven modes x kernel/bypass paths, every cell audited) plus an
# audited campaign churn axis, built with the race detector. The sweep
# itself exits non-zero if any cell records an isolation violation; the
# crossover property (rIOMMU and bypass >= 3x strict goodput at high churn)
# is pinned by TestFigS2Crossover and the committed golden.
traffic: build
	$(GO) run ./cmd/riommu-bench -quality quick -exp figS2 > /dev/null
	$(GO) run -race ./cmd/riommu-faults \
		-rounds 16 -rates 0 -modes strict,riommu -churn 200000 > /dev/null

# Short bounded runs of the fault-determinism and IRTE-allocator fuzzers
# (the seed corpora also run as part of plain `go test`).
fuzz:
	$(GO) test ./internal/sim/ -run FuzzFaultDeterminism -fuzz FuzzFaultDeterminism -fuzztime 20s
	$(GO) test ./internal/intremap/ -run FuzzIRTEAllocator -fuzz FuzzIRTEAllocator -fuzztime 20s
	$(GO) test ./internal/tenant/ -run FuzzStage2Walk -fuzz FuzzStage2Walk -fuzztime 20s
	$(GO) test ./internal/traffic/ -run FuzzConnectionChurn -fuzz FuzzConnectionChurn -fuzztime 20s

# fuzz-smoke is the CI-sized variant: long enough to execute the engines on
# generated inputs, short enough for every push.
fuzz-smoke:
	$(GO) test ./internal/sim/ -run FuzzFaultDeterminism -fuzz FuzzFaultDeterminism -fuzztime $(FUZZTIME)
	$(GO) test ./internal/intremap/ -run FuzzIRTEAllocator -fuzz FuzzIRTEAllocator -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tenant/ -run FuzzStage2Walk -fuzz FuzzStage2Walk -fuzztime $(FUZZTIME)
	$(GO) test ./internal/traffic/ -run FuzzConnectionChurn -fuzz FuzzConnectionChurn -fuzztime $(FUZZTIME)

# bench-json regenerates the committed benchmark golden. Run it (and commit
# the result) whenever an intentional change moves any cell metric. The
# golden is generated with -parallel 1; bench-check verifies at the default
# worker count, so the diff doubles as a full-grid serial-vs-parallel
# equivalence check.
bench-json: build
	$(GO) run ./cmd/riommu-bench -quality quick -parallel 1 -json $(BENCH_GOLDEN) > /dev/null

# bench-check is the CI benchmark-regression gate: rerun the quick grid and
# fail on any byte of drift from the committed golden.
bench-check: build
	@tmp="$$(mktemp)"; trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/riommu-bench -quality quick -json "$$tmp" > /dev/null || exit 1; \
	if ! diff -u $(BENCH_GOLDEN) "$$tmp"; then \
		echo ""; \
		echo "benchmark drift vs $(BENCH_GOLDEN)."; \
		echo "If intentional, refresh with: make bench-json && git add $(BENCH_GOLDEN)"; \
		exit 1; \
	fi; \
	echo "bench-check: no drift vs $(BENCH_GOLDEN)"

# alloc-check is the allocation-regression gate: the steady-state translation
# hot paths (IOTLB hit, rIOTLB hit, warm radix walk, IOVA recycle) must stay
# at zero allocations per operation. Unlike the wall-clock deltas below this
# gate is machine-independent, so CI hard-fails on it.
alloc-check:
	$(GO) test -run TestHotPathAllocs -count=1 .

# bench-wallclock runs the wall-clock suite (ns/op of the simulator itself,
# not virtual cycles) and compares against the committed baseline with the
# in-repo benchdiff tool. Most rows are informational — ns/op depends on the
# machine — but the benchmarks named in $(BENCH_GATE) carry per-benchmark
# regression floors; flipping "enforce" to true in that file turns them into
# a hard exit-1 gate. allocs/op increases always fail.
bench-wallclock: build
	@tmp="$$(mktemp)"; trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run '^$$' -bench '$(WALLCLOCK_PATTERN)' -count=2 . | tee "$$tmp"; \
	echo ""; \
	$(GO) run ./cmd/benchdiff -gate $(BENCH_GATE) $(BENCH_WALLCLOCK) "$$tmp"

# bench-wallclock-baseline regenerates the committed wall-clock baseline. Run
# it on an otherwise idle machine and commit the result whenever an
# intentional change moves the hot-path timings (expect noise across
# machines; the deltas, not the absolute numbers, are what reviews compare).
bench-wallclock-baseline: build
	$(GO) test -run '^$$' -bench '$(WALLCLOCK_PATTERN)' -count=2 . | tee $(BENCH_WALLCLOCK)

# grid-full runs the full-quality fault-campaign grid — every axis the
# campaign knows (faults, hostile devices, hostile MSIs, hot-plug storms,
# multi-core scale-out, hostile tenants) at full rounds — as GRID_SHARDS
# sequential shard passes over one shared checkpoint. Every completed cell is
# flushed to grid-full.ckpt before the next starts, so an interrupted or
# wall-clock-budgeted run loses at most one cell: rerunning the same command
# resumes, and the pass that completes the grid renders the report, writes
# grid-full.json, and enforces every gate. Cells are pure functions of their
# key and seed, so the sharded report is byte-identical to a serial run.
GRID_SHARDS ?= 4
GRID_ROUNDS ?= 150
GRID_FLAGS = -rounds $(GRID_ROUNDS) -audit -chaos all -intchaos all -hotplug all \
	-cores 2,4 -tenants 3 -tenantchaos all -churn 2000,500000
grid-full: build
	@i=0; while [ $$i -lt $(GRID_SHARDS) ]; do \
		echo "grid-full: shard $$i/$(GRID_SHARDS)"; \
		$(GO) run ./cmd/riommu-faults $(GRID_FLAGS) \
			-shard $$i/$(GRID_SHARDS) -checkpoint grid-full.ckpt -json grid-full.json || exit 1; \
		i=$$((i + 1)); \
	done
	@echo "grid-full: report in grid-full.json (checkpoint: grid-full.ckpt)"

# grid-check is the sharded-runtime byte-identity gate at CI-sized rounds: a
# serial run and a sharded, checkpoint-resumed run of the same grid must
# produce byte-identical -json reports.
GRID_CHECK_FLAGS = -rounds 8 -rates 0,0.01 -modes strict,riommu -parallel 1
grid-check: build
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/riommu-faults $(GRID_CHECK_FLAGS) -json "$$tmp/serial.json" > /dev/null || exit 1; \
	i=0; while [ $$i -lt 3 ]; do \
		$(GO) run ./cmd/riommu-faults $(GRID_CHECK_FLAGS) \
			-shard $$i/3 -checkpoint "$$tmp/grid.ckpt" -json "$$tmp/sharded.json" > /dev/null || exit 1; \
		i=$$((i + 1)); \
	done; \
	if ! diff -u "$$tmp/serial.json" "$$tmp/sharded.json"; then \
		echo "grid-check: sharded report differs from serial run"; exit 1; \
	fi; \
	echo "grid-check: sharded report byte-identical to serial run"

# profile runs the quick campaign grid under the CPU and heap profilers; feed
# the outputs to `go tool pprof`.
profile: build
	$(GO) run ./cmd/riommu-bench -quality quick -parallel 1 \
		-cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof; inspect with: $(GO) tool pprof cpu.pprof"

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof grid-full.ckpt grid-full.json
